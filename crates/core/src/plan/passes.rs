//! Optimizing pass pipeline over the Plan IR.
//!
//! PR 5's recorder captures exactly the MMO steps an algorithm ran —
//! including the ones it did not need to run. A convergence-free
//! closure keeps relaxing past its fixed point (every post-fixed-point
//! step recomputes bits an earlier step already produced), and a
//! recording that evaluates the same subexpression twice replays it
//! twice. This module adds `Plan -> Plan` passes that remove that
//! redundancy *without changing a single output bit*:
//!
//! * [`CsePass`] — common-subexpression elimination. Steps are keyed on
//!   their operation plus the *canonical content class* of each operand
//!   slot: the recorder's FNV interning dedups inputs, and the
//!   [twin](Plan::slot_twin) links it records for bit-identical step
//!   outputs extend that equivalence to the post-fixed-point tail of a
//!   closure. Two steps with equal keys compute equal bits on the
//!   recording backend's bit-identity class, so the later one merges
//!   into the earlier.
//! * [`DsePass`] — dead-step elimination from live output roots
//!   ([`RootPolicy`]), dropping steps (and orphaned slots) nothing
//!   live reads.
//! * [`FusionPass`] — annotates maximal same-op, same-output-shape RAW
//!   chains ([`FusedChain`]); [`Executor::run_optimized`] forwards them
//!   as [`Backend::prepare_chain`] hints so the tiled backend can give
//!   the chain shared slab residency (output buffers pre-allocated off
//!   the replay's critical path).
//! * [`DensityLoweringPass`] — the Fig 14 density crossover as a plan
//!   rewrite: input slots whose measured
//!   [`density`](crate::repr::density) makes every reader step cheaper
//!   under the sparse cost model
//!   ([`predicted_sparse_mmo_cost`](simd2_gpu::cost::predicted_sparse_mmo_cost))
//!   are re-declared [`Csr`](OperandRepr::Csr) (or
//!   [`Structured24`](OperandRepr::Structured24) when 2:4-compliant).
//!   Representation is a schedule hint, never a semantics change, so
//!   the rewrite is bit-identity-preserving by construction; slots read
//!   as an accumulator anywhere, and steps without a no-edge
//!   annihilator (`PlusNorm`), are never touched.
//! * [`WaveSchedulerPass`] — orders the mutually independent steps of
//!   each dependency wave longest-processing-time-first by the
//!   `simd2-gpu` analytic step cost
//!   ([`predicted_mmo_cost`](simd2_gpu::cost::predicted_mmo_cost); the
//!   sparse variant for steps with sparse-declared operands), so
//!   batched dispatch starts its most expensive steps first instead of
//!   in record order. Steps never move across a RAW edge: only the
//!   order *within* a wave changes.
//!
//! # The bit-identity contract
//!
//! Every pass preserves *bit*-identity, not merely value-equality: for
//! every original step the [`OptimizedPlan`]'s step map still reaches,
//! replaying the optimized plan produces the exact bits the unoptimized
//! replay produces, and the replaying backend's [`OpCount`] equals the
//! optimized plan's [`Plan::predicted_op_count`]. The one caveat is
//! inherited from the twin links: they record content equality on the
//! *recording* backend's bit-identity class, so an optimized
//! reduced-precision plan should be replayed on that same class (any
//! tiled configuration), not on the fp32 reference.
//!
//! A [`PassPipeline`] composes passes, aggregates a [`PassReport`], and
//! bumps the process-global `core.pass.*` counters.

use std::collections::HashMap;

use simd2_gpu::cost::{predicted_mmo_cost, predicted_sparse_mmo_cost};
use simd2_matrix::Matrix;
use simd2_semiring::OpKind;
use simd2_trace::Counter;

use super::{Executor, Plan, PlanBuilder, PlanKey, Replay, ReplayError, SlotId, SlotOrigin};
use crate::backend::{Backend, OpCount};
use crate::error::BackendError;
use crate::repr::{self, OperandRepr};

/// Process-global count of pipeline runs.
static PASS_RUNS: Counter = Counter::new("core.pass.runs");
/// Process-global count of steps merged by CSE.
static PASS_STEPS_MERGED: Counter = Counter::new("core.pass.steps_merged");
/// Process-global count of steps removed by DSE.
static PASS_STEPS_ELIMINATED: Counter = Counter::new("core.pass.steps_eliminated");
/// Process-global count of steps repositioned by the wave scheduler.
static PASS_STEPS_REORDERED: Counter = Counter::new("core.pass.steps_reordered");
/// Process-global count of RAW chains annotated by fusion.
static PASS_CHAINS_FUSED: Counter = Counter::new("core.pass.chains_fused");
/// Process-global count of slots re-declared sparse by density lowering.
static PASS_SLOTS_RELOWERED: Counter = Counter::new("core.pass.slots_relowered");

/// What one pass did to the plan it was handed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// The reporting pass's [`PlanPass::name`].
    pub pass: &'static str,
    /// Steps merged into an earlier equivalent step (CSE).
    pub steps_merged: usize,
    /// Steps removed as dead (DSE).
    pub steps_eliminated: usize,
    /// Steps whose position in the step list changed (scheduler).
    pub steps_reordered: usize,
    /// RAW chains annotated for slab residency (fusion).
    pub chains_fused: usize,
    /// Input slots re-declared sparse (density lowering).
    pub slots_relowered: usize,
}

/// Aggregate telemetry of one [`PassPipeline::run`]: per-pass stats
/// plus step totals before and after.
#[derive(Clone, Debug, Default)]
pub struct PassReport {
    /// Steps in the plan handed to the pipeline.
    pub steps_before: usize,
    /// Steps in the optimized plan.
    pub steps_after: usize,
    /// Total steps merged by CSE passes.
    pub steps_merged: usize,
    /// Total steps removed by DSE passes.
    pub steps_eliminated: usize,
    /// Total steps repositioned by scheduler passes.
    pub steps_reordered: usize,
    /// Total RAW chains annotated by fusion passes.
    pub chains_fused: usize,
    /// Total input slots re-declared sparse by density-lowering passes.
    pub slots_relowered: usize,
    /// Per-pass breakdown, in execution order.
    pub passes: Vec<PassStats>,
}

impl PassReport {
    /// Whether any pass changed the plan's steps or lowerings (merges,
    /// eliminations, reorders, or representation rewrites — fusion is
    /// annotation-only and does not count). When this is `false` the
    /// optimized plan's replay is event-stream-identical to the
    /// unoptimized replay, not just output-identical.
    pub fn changed(&self) -> bool {
        self.steps_merged + self.steps_eliminated + self.steps_reordered + self.slots_relowered > 0
    }
}

/// A maximal read-after-write chain of same-op steps with one output
/// shape, annotated by [`FusionPass`]. Step indices refer to the
/// optimized plan and are in chain (dependency) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedChain {
    /// The chain's step indices in the optimized plan, RAW order.
    pub steps: Vec<usize>,
    /// The shared output shape of every step in the chain.
    pub shape: (usize, usize),
    /// The shared operation of every step in the chain.
    pub op: OpKind,
}

/// An optimized plan plus the remap back to the recording it came from:
/// which optimized step/slot (if any) now stands for each original one.
/// Produced by [`PassPipeline::run`]; replayed by
/// [`Executor::run_optimized`]; original-indexed outputs are read back
/// through [`step_output`](Self::step_output) /
/// [`final_output`](Self::final_output).
#[derive(Clone, Debug)]
pub struct OptimizedPlan {
    plan: Plan,
    original_steps: usize,
    original_slots: usize,
    /// `step_map[i]` is the optimized step computing original step `i`'s
    /// bits (`None` once a DSE pass drops it).
    step_map: Vec<Option<usize>>,
    /// `slot_map[i]` is the optimized slot holding original slot `i`'s
    /// bits (`None` for slots dropped with their dead steps).
    slot_map: Vec<Option<SlotId>>,
    chains: Vec<FusedChain>,
    report: PassReport,
}

impl OptimizedPlan {
    /// Wraps `plan` with identity maps and an empty report — the state
    /// a pipeline starts from, and a valid "no passes ran" artifact.
    pub fn identity(plan: Plan) -> Self {
        let steps = plan.step_count();
        let slots = plan.slot_count();
        Self {
            original_steps: steps,
            original_slots: slots,
            step_map: (0..steps).map(Some).collect(),
            slot_map: (0..slots).map(|i| Some(SlotId(i))).collect(),
            chains: Vec::new(),
            report: PassReport {
                steps_before: steps,
                steps_after: steps,
                ..PassReport::default()
            },
            plan,
        }
    }

    /// The optimized plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Consumes the artifact, returning the optimized plan.
    pub fn into_plan(self) -> Plan {
        self.plan
    }

    /// What every pass did.
    pub fn report(&self) -> &PassReport {
        &self.report
    }

    /// The RAW chains annotated for shared slab residency.
    pub fn chains(&self) -> &[FusedChain] {
        &self.chains
    }

    /// Steps in the original recording.
    pub fn original_steps(&self) -> usize {
        self.original_steps
    }

    /// Slots in the original recording.
    pub fn original_slots(&self) -> usize {
        self.original_slots
    }

    /// The optimized step that computes original step `step`'s bits
    /// (`None` if a DSE pass dropped it as dead).
    pub fn step_target(&self, step: usize) -> Option<usize> {
        self.step_map.get(step).copied().flatten()
    }

    /// The optimized slot holding original slot `slot`'s bits (`None`
    /// for slots dropped with their dead steps).
    pub fn slot_target(&self, slot: SlotId) -> Option<SlotId> {
        self.slot_map.get(slot.0).copied().flatten()
    }

    /// The optimized step standing for the original recording's final
    /// step — the root a [`RootPolicy::FinalOutput`] DSE keeps, and the
    /// step [`final_output`](Self::final_output) reads.
    pub fn final_step(&self) -> Option<usize> {
        self.original_steps
            .checked_sub(1)
            .and_then(|last| self.step_map[last])
    }

    /// The optimized plan's cache identity — the *post*-optimization
    /// structural hash plus input fingerprint, which is what a plan
    /// cache should key on: differently-recorded but
    /// post-optimization-identical plans collide here and can share one
    /// cached result.
    pub fn cache_key(&self) -> PlanKey {
        self.plan.cache_key()
    }

    /// Original step `step`'s output, read from a replay of the
    /// *optimized* plan through the step map. Bit-identical to the
    /// unoptimized replay's `step_output(step)` whenever the map still
    /// reaches the step.
    pub fn step_output<'r>(&self, replay: &'r Replay, step: usize) -> Option<&'r Matrix> {
        self.step_target(step).map(|j| replay.step_output(j))
    }

    /// The original recording's final output, read from a replay of the
    /// optimized plan — bit-identical to the unoptimized replay's
    /// [`Replay::final_output`].
    pub fn final_output<'r>(&self, replay: &'r Replay) -> Option<&'r Matrix> {
        self.final_step().map(|j| replay.step_output(j))
    }

    /// Replaces the plan and composes the pass-local maps into the
    /// running original→optimized maps. Chains are remapped too;
    /// a chain that loses members below length 2 is dropped.
    fn compose(&mut self, plan: Plan, slot_map: Vec<Option<SlotId>>, step_map: Vec<Option<usize>>) {
        for m in &mut self.slot_map {
            *m = m.and_then(|s| slot_map[s.0]);
        }
        for m in &mut self.step_map {
            *m = m.and_then(|j| step_map[j]);
        }
        self.chains.retain_mut(|chain| {
            chain.steps = chain.steps.iter().filter_map(|&j| step_map[j]).collect();
            chain.steps.len() >= 2
        });
        self.plan = plan;
    }
}

/// One `Plan -> Plan` transformation. A pass mutates the
/// [`OptimizedPlan`] in place — rewriting the plan and composing its
/// own local remap into the artifact's original→optimized maps — and
/// reports what it did. The contract every pass must keep: for each
/// original step the composed step map still reaches, the optimized
/// plan's replay produces that step's exact recorded bits (on the
/// recording backend's bit-identity class).
pub trait PlanPass {
    /// Short stable pass name, reported in [`PassStats`].
    fn name(&self) -> &'static str;

    /// Transforms the plan, returning what changed.
    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats;
}

/// Common-subexpression elimination.
///
/// Every slot gets a *canonical content class*: inputs are their own
/// class (the recorder's interning already merged bit-identical
/// inputs), a step output with a [twin](Plan::slot_twin) joins its
/// twin's class, and a merged step's output joins its representative's
/// class. Steps are keyed on `(op, class(a), class(b), class(c))`; a
/// step whose key was seen before merges into the earlier step:
/// readers of its output are rewired to the representative's output
/// slot, and the step and its output slot are dropped.
///
/// Canonicalisation is used for *keying only* — surviving steps keep
/// their recorded operand slots, so no rewiring happens beyond what a
/// merge requires. Inputs that differ in any exact f32 bit (e.g. values
/// that collide only after fp16 quantisation) are never identified.
#[derive(Clone, Copy, Debug, Default)]
pub struct CsePass;

impl PlanPass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats {
        let plan = &optimized.plan;
        let n_slots = plan.slots.len();
        let n_steps = plan.steps.len();
        // Canonical content class per slot, seeded from the record-time
        // twin links (a twin always points strictly earlier, so the
        // class of the target is final when we read it).
        let mut class: Vec<usize> = (0..n_slots).collect();
        for i in 0..n_slots {
            if let Some(t) = plan.slots[i].twin {
                class[i] = class[t.0];
            }
        }
        let mut seen: HashMap<(OpKind, usize, usize, usize), usize> = HashMap::new();
        let mut keep = vec![true; n_steps];
        let mut rep: Vec<usize> = (0..n_steps).collect();
        for (j, step) in plan.steps.iter().enumerate() {
            let key = (step.op, class[step.a.0], class[step.b.0], class[step.c.0]);
            match seen.get(&key) {
                Some(&i) => {
                    keep[j] = false;
                    rep[j] = i;
                    // The merged step's output joins its
                    // representative's content class.
                    class[step.d.0] = class[plan.steps[i].d.0];
                }
                None => {
                    seen.insert(key, j);
                }
            }
        }
        let merged = keep.iter().filter(|&&k| !k).count();
        if merged == 0 {
            return PassStats {
                pass: self.name(),
                ..PassStats::default()
            };
        }
        // Merged steps' output slots are dropped; readers redirect to
        // the representative's output slot. Everything else compacts.
        let mut merged_output: Vec<Option<usize>> = vec![None; n_slots];
        for (j, step) in plan.steps.iter().enumerate() {
            if !keep[j] {
                merged_output[step.d.0] = Some(rep[j]);
            }
        }
        let mut slot_map: Vec<Option<SlotId>> = vec![None; n_slots];
        let mut next = 0usize;
        for i in 0..n_slots {
            if merged_output[i].is_none() {
                slot_map[i] = Some(SlotId(next));
                next += 1;
            }
        }
        for i in 0..n_slots {
            if let Some(r) = merged_output[i] {
                // The representative (a kept step) precedes the merged
                // step, so its output slot survived and is mapped.
                slot_map[i] = slot_map[plan.steps[r].d.0];
            }
        }
        let mut step_map: Vec<Option<usize>> = vec![None; n_steps];
        let mut new_steps = Vec::with_capacity(n_steps - merged);
        for (j, step) in plan.steps.iter().enumerate() {
            if keep[j] {
                step_map[j] = Some(new_steps.len());
                new_steps.push(*step);
            }
        }
        for j in 0..n_steps {
            if step_map[j].is_none() {
                step_map[j] = step_map[rep[j]];
            }
        }
        let remap = |s: SlotId| slot_map[s.0].expect("surviving slots are mapped");
        for s in &mut new_steps {
            s.a = remap(s.a);
            s.b = remap(s.b);
            s.c = remap(s.c);
            s.d = remap(s.d);
        }
        let mut new_slots = Vec::with_capacity(next);
        for (i, slot) in plan.slots.iter().enumerate() {
            if merged_output[i].is_some() {
                continue;
            }
            let mut s = slot.clone();
            if let SlotOrigin::Step(j) = s.origin {
                s.origin = SlotOrigin::Step(step_map[j].expect("kept steps are mapped"));
            }
            s.twin = s.twin.and_then(|t| slot_map[t.0]);
            new_slots.push(s);
        }
        let new_plan = Plan {
            slots: new_slots,
            steps: new_steps,
            reduced_precision: plan.reduced_precision,
        };
        optimized.compose(new_plan, slot_map, step_map);
        PassStats {
            pass: self.name(),
            steps_merged: merged,
            ..PassStats::default()
        }
    }
}

/// Which steps a [`DsePass`] treats as live output roots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum RootPolicy {
    /// Every leaf step — one whose output no other step reads — is a
    /// root. The safe default: every visible result of the plan
    /// (including each constituent of a [`Plan::merge`]) stays
    /// reachable, and only work orphaned by earlier passes dies.
    #[default]
    Leaves,
    /// Only the step the original recording's final output maps to
    /// ([`OptimizedPlan::final_step`]). The aggressive policy for
    /// consumers whose contract is the final output alone (the serving
    /// layer): a guaranteed consequence is that the root becomes the
    /// optimized plan's unique deepest step, so
    /// [`Replay::final_output`] on the optimized plan equals the
    /// original final output.
    FinalOutput,
    /// Explicit root steps, as indices of the plan this pass sees —
    /// the retention seam for callers that must keep intermediate
    /// steps observable (e.g. checkpoint consumers reading per-step
    /// outputs). Out-of-range indices are ignored.
    Steps(Vec<usize>),
}

/// Dead-step elimination: drops every step not transitively reachable
/// from the configured [`RootPolicy`] roots through read-after-write
/// edges, along with slots only dead steps used.
#[derive(Clone, Debug, Default)]
pub struct DsePass {
    policy: RootPolicy,
}

impl DsePass {
    /// A DSE pass rooted by `policy`.
    pub fn new(policy: RootPolicy) -> Self {
        Self { policy }
    }
}

impl PlanPass for DsePass {
    fn name(&self) -> &'static str {
        "dse"
    }

    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats {
        let plan = &optimized.plan;
        let n_steps = plan.steps.len();
        let none = PassStats {
            pass: self.name(),
            ..PassStats::default()
        };
        if n_steps == 0 {
            return none;
        }
        let deps = plan.dependencies();
        let mut stack: Vec<usize> = match &self.policy {
            RootPolicy::Leaves => {
                let mut read = vec![false; n_steps];
                for d in &deps {
                    for &p in d {
                        read[p] = true;
                    }
                }
                (0..n_steps).filter(|&j| !read[j]).collect()
            }
            RootPolicy::FinalOutput => optimized.final_step().into_iter().collect(),
            RootPolicy::Steps(roots) => roots.iter().copied().filter(|&j| j < n_steps).collect(),
        };
        let mut live = vec![false; n_steps];
        while let Some(j) = stack.pop() {
            if live[j] {
                continue;
            }
            live[j] = true;
            stack.extend(deps[j].iter().copied());
        }
        let eliminated = live.iter().filter(|&&l| !l).count();
        if eliminated == 0 {
            return none;
        }
        let n_slots = plan.slots.len();
        let mut keep_slot = vec![false; n_slots];
        for (j, step) in plan.steps.iter().enumerate() {
            if live[j] {
                for s in [step.a, step.b, step.c, step.d] {
                    keep_slot[s.0] = true;
                }
            }
        }
        let mut slot_map: Vec<Option<SlotId>> = vec![None; n_slots];
        let mut next = 0usize;
        for i in 0..n_slots {
            if keep_slot[i] {
                slot_map[i] = Some(SlotId(next));
                next += 1;
            }
        }
        let mut step_map: Vec<Option<usize>> = vec![None; n_steps];
        let mut new_steps = Vec::new();
        for (j, step) in plan.steps.iter().enumerate() {
            if live[j] {
                step_map[j] = Some(new_steps.len());
                let mut s = *step;
                let remap = |s: SlotId| slot_map[s.0].expect("live steps' slots are kept");
                s.a = remap(s.a);
                s.b = remap(s.b);
                s.c = remap(s.c);
                s.d = remap(s.d);
                new_steps.push(s);
            }
        }
        let mut new_slots = Vec::with_capacity(next);
        for (i, slot) in plan.slots.iter().enumerate() {
            if !keep_slot[i] {
                continue;
            }
            let mut s = slot.clone();
            if let SlotOrigin::Step(j) = s.origin {
                s.origin =
                    SlotOrigin::Step(step_map[j].expect("kept outputs come from live steps"));
            }
            s.twin = s.twin.and_then(|t| slot_map[t.0]);
            new_slots.push(s);
        }
        let new_plan = Plan {
            slots: new_slots,
            steps: new_steps,
            reduced_precision: plan.reduced_precision,
        };
        optimized.compose(new_plan, slot_map, step_map);
        PassStats {
            pass: self.name(),
            steps_eliminated: eliminated,
            ..PassStats::default()
        }
    }
}

/// RAW-chain fusion (analysis): finds maximal chains of same-op steps
/// where each step reads its predecessor's output and every output has
/// one shape, and records them as [`FusedChain`]s. The plan itself is
/// untouched; [`Executor::run_optimized`] turns the annotations into
/// [`Backend::prepare_chain`] hints so the tiled backend pre-allocates
/// the chain's output slabs off the replay's critical path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FusionPass;

impl PlanPass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats {
        let plan = &optimized.plan;
        let n = plan.steps.len();
        // First same-op same-shape reader of each step's output.
        let mut next: Vec<Option<usize>> = vec![None; n];
        for (i, reader) in next.iter_mut().enumerate() {
            let d = plan.steps[i].d;
            let op = plan.steps[i].op;
            let shape = plan.slots[d.0].shape;
            *reader = (i + 1..n).find(|&j| {
                let s = &plan.steps[j];
                s.op == op && (s.a == d || s.b == d || s.c == d) && plan.slots[s.d.0].shape == shape
            });
        }
        let mut in_chain = vec![false; n];
        let mut added = 0usize;
        for i in 0..n {
            if in_chain[i] {
                continue;
            }
            let mut chain = vec![i];
            let mut cur = i;
            while let Some(j) = next[cur] {
                if in_chain[j] {
                    break;
                }
                chain.push(j);
                cur = j;
            }
            if chain.len() >= 2 {
                for &s in &chain {
                    in_chain[s] = true;
                }
                optimized.chains.push(FusedChain {
                    shape: plan.slots[plan.steps[i].d.0].shape,
                    op: plan.steps[i].op,
                    steps: chain,
                });
                added += 1;
            }
        }
        PassStats {
            pass: self.name(),
            chains_fused: added,
            ..PassStats::default()
        }
    }
}

/// Density-crossover representation lowering (the Fig 14 decision as a
/// plan rewrite).
///
/// For every *input* slot still declared dense, the pass measures the
/// captured value's [`density`](crate::repr::density) against each
/// reader step's no-edge sentinel and promotes the slot to
/// [`OperandRepr::Csr`] — or [`OperandRepr::Structured24`] when the
/// value satisfies the 2:4 constraint — exactly when the sparse cost
/// model predicts every reader step gets cheaper
/// ([`predicted_sparse_mmo_cost`] vs [`predicted_mmo_cost`] on the
/// step's recorded geometry; the per-step instantiation of
/// [`sparse_crossover_density`](simd2_gpu::cost::sparse_crossover_density)).
///
/// The rewrite can never change an answer or invalidate a replay:
///
/// * a representation is a schedule hint — every backend's sparse
///   kernels are bit-identical to its dense datapath, and backends
///   without sparse kernels validate the declaration and fall back
///   dense;
/// * a slot is only promoted when **all** its reader steps share one
///   no-edge annihilator equal to the new sentinel (so
///   [`check_mmo_operands_ref`](crate::validate::check_mmo_operands_ref)
///   accepts every dispatch), which also excludes `PlusNorm` readers
///   (no annihilator exists);
/// * slots read as the accumulator `C` anywhere stay dense — `C` seeds
///   every output element and has no skippable terms;
/// * step-output slots stay dense — their values exist only at replay
///   time, so no density measurement exists at lowering time.
///
/// Promotion changes [`Plan::structural_hash`] (lowering is a plan
/// property), so differently-lowered plans cache separately by design.
#[derive(Clone, Copy, Debug, Default)]
pub struct DensityLoweringPass;

impl PlanPass for DensityLoweringPass {
    fn name(&self) -> &'static str {
        "density-lower"
    }

    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats {
        let plan = &optimized.plan;
        let n_slots = plan.slots.len();
        // Which steps read each slot as A/B, and whether any step reads
        // it as the accumulator.
        let mut used_as_c = vec![false; n_slots];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
        for (j, step) in plan.steps.iter().enumerate() {
            used_as_c[step.c.0] = true;
            readers[step.a.0].push(j);
            readers[step.b.0].push(j);
        }
        let mut relowered = 0usize;
        let mut new_reprs: Vec<Option<OperandRepr>> = vec![None; n_slots];
        for (i, slot) in plan.slots.iter().enumerate() {
            if !slot.repr.is_dense() || used_as_c[i] || readers[i].is_empty() {
                continue;
            }
            let Some(value) = &slot.value else {
                continue; // step output: no value to measure at lowering time
            };
            // Every reader op must share one no-edge annihilator — the
            // sentinel the promoted declaration validates against.
            let mut sentinel: Option<f32> = None;
            let agreed = readers[i].iter().all(|&j| {
                let Some(z) = plan.steps[j].op.no_edge_f32() else {
                    return false;
                };
                match sentinel {
                    None => {
                        sentinel = Some(z);
                        true
                    }
                    Some(prev) => prev.to_bits() == z.to_bits(),
                }
            });
            let Some(zero) = sentinel.filter(|_| agreed) else {
                continue;
            };
            let d = repr::density(value, zero);
            // Below the crossover for *every* reader: the sparse model
            // (this slot at its measured density, the other operand at
            // its already-declared density) must beat the dense model
            // on each reader step's recorded geometry.
            let cheaper_everywhere = readers[i].iter().all(|&j| {
                let s = &plan.steps[j];
                let (m, n, k) = plan.step_geometry(j);
                let other = |slot: SlotId| match (
                    plan.slots[slot.0].repr.zero(),
                    &plan.slots[slot.0].value,
                ) {
                    (Some(z), Some(v)) => repr::density(v, z),
                    _ => 1.0,
                };
                let (da, db) = if s.a.0 == i {
                    (d, if s.b.0 == i { d } else { other(s.b) })
                } else {
                    (other(s.a), d)
                };
                predicted_sparse_mmo_cost(s.op, m, n, k, da, db) < predicted_mmo_cost(s.op, m, n, k)
            });
            if !cheaper_everywhere {
                continue;
            }
            new_reprs[i] = Some(if repr::is_2_4_compliant(value, zero) {
                OperandRepr::structured(zero)
            } else {
                OperandRepr::csr(zero)
            });
            relowered += 1;
        }
        for (i, repr) in new_reprs.into_iter().enumerate() {
            if let Some(r) = repr {
                optimized.plan.slots[i].repr = r;
            }
        }
        PassStats {
            pass: self.name(),
            slots_relowered: relowered,
            ..PassStats::default()
        }
    }
}

/// Cost-model wave scheduler: within each dependency wave, orders the
/// mutually independent steps longest-processing-time-first by the
/// `simd2-gpu` predicted step cost (per-element issue slots × `m·n·k`
/// volume; the sparse cost model for steps whose operands carry sparse
/// declarations, so a density-lowered plan schedules by its *actual*
/// predicted work), so batched dispatch launches its most expensive
/// steps first. Waves are concatenated in order and dependency edges
/// never cross — each step's dependencies keep strictly smaller
/// indices, and the optimized plan's wave *partition* is identical to
/// the input's.
#[derive(Clone, Copy, Debug, Default)]
pub struct WaveSchedulerPass;

impl PlanPass for WaveSchedulerPass {
    fn name(&self) -> &'static str {
        "wave-schedule"
    }

    fn run(&self, optimized: &mut OptimizedPlan) -> PassStats {
        let plan = &optimized.plan;
        let n = plan.steps.len();
        let costs: Vec<f64> = (0..n)
            .map(|j| {
                let (m, cols, k) = plan.step_geometry(j);
                let s = &plan.steps[j];
                let reprs = plan.step_reprs(j);
                if reprs.iter().all(|r| r.is_dense()) {
                    return predicted_mmo_cost(s.op, m, cols, k);
                }
                // Sparse-declared operands cost by measured density
                // (1.0 when no value is captured, i.e. never for the
                // sparse slots the density pass produces).
                let density_of = |slot: SlotId, r: OperandRepr| match (
                    r.zero(),
                    plan.slots[slot.0].value.as_ref(),
                ) {
                    (Some(z), Some(v)) => repr::density(v, z),
                    _ => 1.0,
                };
                predicted_sparse_mmo_cost(
                    s.op,
                    m,
                    cols,
                    k,
                    density_of(s.a, reprs[0]),
                    density_of(s.b, reprs[1]),
                )
            })
            .collect();
        let mut order = Vec::with_capacity(n);
        for wave in plan.waves() {
            let mut w = wave;
            // Descending cost; record order breaks ties, keeping the
            // permutation deterministic.
            w.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then_with(|| a.cmp(&b)));
            order.extend(w);
        }
        let mut new_of = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            new_of[old] = new;
        }
        let reordered = (0..n).filter(|&j| new_of[j] != j).count();
        if reordered == 0 {
            return PassStats {
                pass: self.name(),
                ..PassStats::default()
            };
        }
        let mut new_slots = plan.slots.clone();
        for slot in &mut new_slots {
            if let SlotOrigin::Step(j) = slot.origin {
                slot.origin = SlotOrigin::Step(new_of[j]);
            }
        }
        let new_plan = Plan {
            slots: new_slots,
            steps: order.iter().map(|&old| plan.steps[old]).collect(),
            reduced_precision: plan.reduced_precision,
        };
        let slot_map = (0..plan.slots.len()).map(|i| Some(SlotId(i))).collect();
        let step_map = (0..n).map(|j| Some(new_of[j])).collect();
        optimized.compose(new_plan, slot_map, step_map);
        PassStats {
            pass: self.name(),
            steps_reordered: reordered,
            ..PassStats::default()
        }
    }
}

/// An ordered sequence of passes with aggregate telemetry: runs each
/// pass, folds its [`PassStats`] into one [`PassReport`], and bumps the
/// process-global `core.pass.*` counters.
pub struct PassPipeline {
    passes: Vec<Box<dyn PlanPass>>,
}

impl std::fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassPipeline")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for PassPipeline {
    fn default() -> Self {
        Self::standard()
    }
}

impl PassPipeline {
    /// A pipeline running `passes` in order.
    pub fn new(passes: Vec<Box<dyn PlanPass>>) -> Self {
        Self { passes }
    }

    /// The standard pipeline: CSE → DSE (leaf roots, so every visible
    /// result survives) → fusion → wave scheduling. The safe default
    /// for general replays, including merged multi-recording plans.
    pub fn standard() -> Self {
        Self::new(vec![
            Box::new(CsePass),
            Box::new(DsePass::new(RootPolicy::Leaves)),
            Box::new(FusionPass),
            Box::new(WaveSchedulerPass),
        ])
    }

    /// The serving pipeline: like [`standard`](Self::standard) but DSE
    /// is rooted at the final output alone
    /// ([`RootPolicy::FinalOutput`]) — the serving layer's contract is
    /// the final output, and this policy guarantees the optimized
    /// plan's own [`Replay::final_output`] equals the original's (the
    /// root is the unique deepest step, so it stays last under wave
    /// scheduling).
    pub fn serving() -> Self {
        Self::new(vec![
            Box::new(CsePass),
            Box::new(DsePass::new(RootPolicy::FinalOutput)),
            Box::new(FusionPass),
            Box::new(WaveSchedulerPass),
        ])
    }

    /// The sparse pipeline: [`standard`](Self::standard) plus a
    /// [`DensityLoweringPass`] between DSE and fusion, so the Fig 14
    /// density crossover re-declares cold input slots sparse and the
    /// wave scheduler then costs those steps with the sparse model.
    /// Kept out of `standard()`/`serving()` on purpose: promotion moves
    /// the plan's structural hash, and callers who did not opt into
    /// sparse lowering keep their pre-seam cache identities.
    pub fn sparse() -> Self {
        Self::new(vec![
            Box::new(CsePass),
            Box::new(DsePass::new(RootPolicy::Leaves)),
            Box::new(DensityLoweringPass),
            Box::new(FusionPass),
            Box::new(WaveSchedulerPass),
        ])
    }

    /// The configured passes' names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `plan` and returns the optimized artifact.
    pub fn run(&self, plan: Plan) -> OptimizedPlan {
        let mut optimized = OptimizedPlan::identity(plan);
        for pass in &self.passes {
            let stats = pass.run(&mut optimized);
            let report = &mut optimized.report;
            report.steps_merged += stats.steps_merged;
            report.steps_eliminated += stats.steps_eliminated;
            report.steps_reordered += stats.steps_reordered;
            report.chains_fused += stats.chains_fused;
            report.slots_relowered += stats.slots_relowered;
            report.passes.push(stats);
        }
        optimized.report.steps_after = optimized.plan.step_count();
        let report = &optimized.report;
        PASS_RUNS.add(1);
        PASS_STEPS_MERGED.add(report.steps_merged as u64);
        PASS_STEPS_ELIMINATED.add(report.steps_eliminated as u64);
        PASS_STEPS_REORDERED.add(report.steps_reordered as u64);
        PASS_CHAINS_FUSED.add(report.chains_fused as u64);
        PASS_SLOTS_RELOWERED.add(report.slots_relowered as u64);
        optimized
    }
}

impl Executor {
    /// Replays an [`OptimizedPlan`]: forwards its [`FusedChain`]
    /// annotations to the backend as [`Backend::prepare_chain`] hints
    /// (pre-allocating chain output slabs off the replay's critical
    /// path on backends that honour them), then runs the optimized plan
    /// exactly like [`run`](Executor::run). Read original-indexed
    /// outputs back through [`OptimizedPlan::step_output`] /
    /// [`OptimizedPlan::final_output`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`run`](Executor::run).
    pub fn run_optimized<B: Backend>(
        &self,
        optimized: &OptimizedPlan,
        backend: &mut B,
    ) -> Result<Replay, ReplayError> {
        for chain in &optimized.chains {
            backend.prepare_chain(chain.shape, chain.steps.len());
        }
        self.run(&optimized.plan, backend)
    }
}

/// A recording frontend that optimizes on finish: wraps a
/// [`PlanBuilder`] (so it is itself a [`Backend`] any algorithm records
/// through, observationally identical to the eager run) and pipes the
/// finished plan through a [`PassPipeline`]. Obtained from
/// [`Simd2Context::record_optimized`](crate::Simd2Context::record_optimized).
#[derive(Debug)]
pub struct OptimizingRecorder<'b, B: Backend> {
    builder: PlanBuilder<'b, B>,
    pipeline: PassPipeline,
}

impl<'b, B: Backend> OptimizingRecorder<'b, B> {
    /// Starts recording over `backend` with the
    /// [standard](PassPipeline::standard) pipeline.
    pub fn over(backend: &'b mut B) -> Self {
        Self::with_pipeline(backend, PassPipeline::standard())
    }

    /// Starts recording over `backend` with a specific pipeline.
    pub fn with_pipeline(backend: &'b mut B, pipeline: PassPipeline) -> Self {
        Self {
            builder: PlanBuilder::over(backend),
            pipeline,
        }
    }

    /// The number of steps recorded so far (pre-optimization).
    pub fn recorded_steps(&self) -> usize {
        self.builder.recorded_steps()
    }

    /// Finishes recording and runs the pipeline over the plan.
    pub fn finish(self) -> OptimizedPlan {
        self.pipeline.run(self.builder.finish())
    }
}

impl<B: Backend> Backend for OptimizingRecorder<'_, B> {
    fn name(&self) -> &'static str {
        self.builder.name()
    }

    fn reduced_precision(&self) -> bool {
        self.builder.reduced_precision()
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        self.builder.mmo(op, a, b, c)
    }

    fn mmo_sequential(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        self.builder.mmo_sequential(op, a, b, c)
    }

    fn op_count(&self) -> OpCount {
        self.builder.op_count()
    }

    fn reset_count(&mut self) {
        self.builder.reset_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::TiledBackend;
    use simd2_matrix::gen;

    fn bit_eq(x: &Matrix, y: &Matrix) -> bool {
        x.shape() == y.shape()
            && x.as_slice()
                .iter()
                .zip(y.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// A recording that evaluates the same subexpression twice: the
    /// duplicate merges, and the downstream reader follows it.
    fn record_with_duplicate(op: OpKind) -> (Plan, Vec<Matrix>) {
        let a = gen::random_operands_for(op, 40, 40, 1);
        let b = gen::random_operands_for(op, 40, 40, 2);
        let c = Matrix::filled(40, 40, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d0 = rec.mmo(op, &a, &b, &c).unwrap();
        let d1 = rec.mmo(op, &a, &b, &c).unwrap(); // duplicate of d0
        let d2 = rec.mmo(op, &d1, &b, &c).unwrap();
        (rec.finish(), vec![d0, d1, d2])
    }

    #[test]
    fn cse_merges_duplicate_recordings_and_maps_outputs() {
        let (plan, eager) = record_with_duplicate(OpKind::MinPlus);
        assert_eq!(plan.step_count(), 3);
        let optimized = PassPipeline::standard().run(plan);
        assert_eq!(optimized.report().steps_merged, 1);
        assert_eq!(optimized.plan().step_count(), 2);
        let mut be = TiledBackend::new();
        let replay = Executor::new().run_optimized(&optimized, &mut be).unwrap();
        for (i, want) in eager.iter().enumerate() {
            assert!(
                bit_eq(optimized.step_output(&replay, i).unwrap(), want),
                "step {i}"
            );
        }
        assert!(bit_eq(optimized.final_output(&replay).unwrap(), &eager[2]));
        assert_eq!(be.op_count(), optimized.plan().predicted_op_count());
    }

    #[test]
    fn duplicate_and_clean_recordings_optimize_to_equal_keys() {
        let (dup, _) = record_with_duplicate(OpKind::MaxMin);
        let op = OpKind::MaxMin;
        let a = gen::random_operands_for(op, 40, 40, 1);
        let b = gen::random_operands_for(op, 40, 40, 2);
        let c = Matrix::filled(40, 40, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d0 = rec.mmo(op, &a, &b, &c).unwrap();
        rec.mmo(op, &d0, &b, &c).unwrap();
        let clean = rec.finish();
        let pipeline = PassPipeline::standard();
        let dup_opt = pipeline.run(dup);
        let clean_opt = pipeline.run(clean);
        assert_eq!(dup_opt.cache_key(), clean_opt.cache_key());
        assert_ne!(
            dup_opt.cache_key().structural,
            clean_opt.report().steps_merged as u64,
            "sanity: key is a real hash"
        );
    }

    #[test]
    fn convergence_free_closure_tail_merges_via_twins() {
        use crate::solve::{closure, ClosureAlgorithm};
        let op = OpKind::MinPlus;
        let adj = gen::gnp_graph(24, 0.4, 1.0, 8.0, 7).adjacency(op);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let full = closure(&mut rec, op, &adj, ClosureAlgorithm::BellmanFord, false).unwrap();
        let plan = rec.finish();
        let optimized = PassPipeline::standard().run(plan);
        assert!(
            optimized.report().steps_merged > 0,
            "post-fixed-point relaxations must merge: {:?}",
            optimized.report()
        );
        let mut replay_be = TiledBackend::new();
        let replay = Executor::new()
            .run_optimized(&optimized, &mut replay_be)
            .unwrap();
        assert!(bit_eq(
            optimized.final_output(&replay).unwrap(),
            &full.closure
        ));
    }

    #[test]
    fn leaves_policy_keeps_every_merged_plan_output() {
        let op_a = OpKind::PlusMul;
        let op_b = OpKind::MinPlus;
        let record = |op: OpKind| {
            let a = gen::random_operands_for(op, 24, 24, 3);
            let c = Matrix::filled(24, 24, op.reduce_identity_f32());
            let mut be = TiledBackend::new();
            let mut rec = PlanBuilder::over(&mut be);
            let d = rec.mmo(op, &a, &a, &c).unwrap();
            (rec.finish(), d)
        };
        let (pa, da) = record(op_a);
        let (pb, db) = record(op_b);
        let merged = Plan::merge([pa, pb]);
        let optimized = PassPipeline::standard().run(merged);
        assert_eq!(optimized.report().steps_eliminated, 0);
        let mut be = TiledBackend::new();
        let replay = Executor::new().run_optimized(&optimized, &mut be).unwrap();
        assert!(bit_eq(optimized.step_output(&replay, 0).unwrap(), &da));
        assert!(bit_eq(optimized.step_output(&replay, 1).unwrap(), &db));
    }

    /// A 48×48 MinPlus adjacency with ~10% finite edges — far below
    /// any op's predicted density crossover, and deliberately *not*
    /// 2:4-compliant (every seventh row opens with three finite
    /// entries) so promotion lands on CSR.
    fn sparse_minplus_input() -> Matrix {
        Matrix::from_fn(48, 48, |r, c| {
            if (r * 31 + c * 17) % 10 == 0 || (r % 7 == 0 && c < 3) {
                1.0 + ((r + c) % 7) as f32
            } else {
                f32::INFINITY
            }
        })
    }

    #[test]
    fn density_lowering_promotes_cold_inputs_and_preserves_bits() {
        let op = OpKind::MinPlus;
        let a = sparse_minplus_input();
        let b = gen::random_operands_for(op, 48, 48, 11);
        let c = Matrix::filled(48, 48, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d0 = rec.mmo(op, &a, &b, &c).unwrap();
        let d1 = rec.mmo(op, &d0, &b, &c).unwrap();
        let plan = rec.finish();
        let standard = PassPipeline::standard().run(plan.clone());
        let optimized = PassPipeline::sparse().run(plan);
        assert_eq!(optimized.report().slots_relowered, 1, "only A is cold");
        assert!(optimized.report().changed());
        assert!(optimized.plan().has_sparse_slots());
        // Lowering is part of the plan's structure: the sparse pipeline
        // produces a distinct cache identity.
        assert_ne!(optimized.cache_key(), standard.cache_key());
        // The promoted slot is A's, as a CSR over the op's no-edge.
        let promoted: Vec<OperandRepr> = optimized
            .plan()
            .input_slots()
            .into_iter()
            .map(|s| optimized.plan().slot_repr(s))
            .filter(|r| !r.is_dense())
            .collect();
        assert_eq!(promoted, vec![OperandRepr::csr(f32::INFINITY)]);
        // Replays — sequential and batched — stay bit-identical to the
        // eager recording on the dense-fallback backend.
        for executor in [Executor::new(), Executor::batched()] {
            let mut be = TiledBackend::new();
            let replay = executor.run_optimized(&optimized, &mut be).unwrap();
            assert!(bit_eq(optimized.step_output(&replay, 0).unwrap(), &d0));
            assert!(bit_eq(optimized.final_output(&replay).unwrap(), &d1));
        }
    }

    #[test]
    fn density_lowering_prefers_structured_for_2_4_compliant_inputs() {
        let op = OpKind::PlusMul;
        // One nonzero per 8 columns: density 1/8, 2:4-compliant.
        let a = Matrix::from_fn(48, 48, |r, c| {
            if c % 8 == 0 {
                1.0 + (r % 5) as f32
            } else {
                0.0
            }
        });
        let b = gen::random_operands_for(op, 48, 48, 3);
        let c = Matrix::filled(48, 48, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d0 = rec.mmo(op, &a, &b, &c).unwrap();
        let optimized = PassPipeline::sparse().run(rec.finish());
        assert_eq!(optimized.report().slots_relowered, 1);
        let reprs: Vec<OperandRepr> = optimized
            .plan()
            .input_slots()
            .into_iter()
            .map(|s| optimized.plan().slot_repr(s))
            .filter(|r| !r.is_dense())
            .collect();
        assert_eq!(reprs, vec![OperandRepr::structured(0.0)]);
        let mut be = TiledBackend::new();
        let replay = Executor::new().run_optimized(&optimized, &mut be).unwrap();
        assert!(bit_eq(optimized.final_output(&replay).unwrap(), &d0));
    }

    #[test]
    fn density_lowering_never_touches_accumulator_reads_or_plusnorm() {
        let op = OpKind::MinPlus;
        let a = sparse_minplus_input();
        let b = gen::random_operands_for(op, 48, 48, 5);
        let x = gen::random_operands_for(op, 48, 48, 6);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        // `a` is read as A in step 0 and as the accumulator in step 1:
        // it must stay dense even though its density is promotable.
        rec.mmo(
            op,
            &a,
            &b,
            &Matrix::filled(48, 48, op.reduce_identity_f32()),
        )
        .unwrap();
        rec.mmo(op, &x, &b, &a).unwrap();
        let optimized = PassPipeline::sparse().run(rec.finish());
        assert_eq!(optimized.report().slots_relowered, 0);
        assert!(!optimized.plan().has_sparse_slots());
        // PlusNorm has no annihilator: nothing promotes regardless of
        // how many exact zeros the input holds.
        let op = OpKind::PlusNorm;
        let zeroed = Matrix::from_fn(48, 48, |r, c| if (r + c) % 9 == 0 { 2.0 } else { 0.0 });
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(
            op,
            &zeroed,
            &gen::random_operands_for(op, 48, 48, 7),
            &Matrix::filled(48, 48, op.reduce_identity_f32()),
        )
        .unwrap();
        let optimized = PassPipeline::sparse().run(rec.finish());
        assert_eq!(optimized.report().slots_relowered, 0);
        assert!(!optimized.plan().has_sparse_slots());
    }

    #[test]
    fn mixed_annihilator_readers_stay_dense() {
        // `a` is sparse under +inf, but its two readers disagree on the
        // no-edge sentinel (MinPlus: +inf, MaxPlus: -inf) — a single
        // declaration cannot validate for both, so it stays dense.
        let a = sparse_minplus_input();
        let b = gen::random_operands_for(OpKind::MinPlus, 48, 48, 8);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(
            OpKind::MinPlus,
            &a,
            &b,
            &Matrix::filled(48, 48, OpKind::MinPlus.reduce_identity_f32()),
        )
        .unwrap();
        rec.mmo(
            OpKind::MaxPlus,
            &a,
            &b,
            &Matrix::filled(48, 48, OpKind::MaxPlus.reduce_identity_f32()),
        )
        .unwrap();
        let optimized = PassPipeline::sparse().run(rec.finish());
        assert_eq!(optimized.report().slots_relowered, 0);
        assert!(!optimized.plan().has_sparse_slots());
    }

    #[test]
    fn sparse_pipeline_is_identity_on_dense_plans() {
        // Fully dense inputs sit above every crossover: the sparse
        // pipeline must keep the standard pipeline's cache identity, so
        // callers opting in pay nothing on dense workloads.
        let (plan, _) = record_with_duplicate(OpKind::MinPlus);
        let standard = PassPipeline::standard().run(plan.clone());
        let sparse = PassPipeline::sparse().run(plan);
        assert_eq!(sparse.report().slots_relowered, 0);
        assert_eq!(standard.cache_key(), sparse.cache_key());
    }

    #[test]
    fn pipeline_bumps_process_counters() {
        let before = (super::PASS_RUNS.get(), super::PASS_STEPS_MERGED.get());
        let (plan, _) = record_with_duplicate(OpKind::OrAnd);
        let optimized = PassPipeline::standard().run(plan);
        assert!(optimized.report().changed());
        assert!(super::PASS_RUNS.get() > before.0);
        assert!(super::PASS_STEPS_MERGED.get() > before.1);
    }
}
