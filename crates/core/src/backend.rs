//! Whole-matrix `D = C ⊕ (A ⊗ B)` execution backends.
//!
//! The evaluation framework (paper Figure 8) swaps the library that
//! implements the SIMD² API between a CUDA-core backend (correctness
//! validation, and the "SIMD² on CUDA cores" configuration) and a
//! Tensor-Core-emulation backend ("SIMD² with SIMD² units"). The
//! [`Backend`] trait is that seam; every backend also counts the tile
//! operations it performs, which is the statistic the performance model
//! charges cycles for.

use simd2_matrix::reference;
use simd2_matrix::tiling::{self, TileGrid};
use simd2_matrix::{Matrix, ISA_TILE};
use simd2_mxu::Simd2Unit;
use simd2_semiring::simd::KernelIsa;
use simd2_semiring::OpKind;

use simd2_fault::{AbftConfig, FaultInjector, MmoUnit, TileCoord};
use simd2_isa::{Dtype, ExecStats, Executor, Instruction, MatrixReg, SharedMemory};
use simd2_trace::{field, span, Counter, Tracer};

use crate::error::BackendError;
use crate::repr::{MatrixRef, OperandRepr};

/// Process-global whole-matrix mmo count (traced backends only).
static MATRIX_MMOS: Counter = Counter::new("core.matrix_mmos");
/// Process-global tile-level mmo count (traced backends only).
static TILE_MMOS: Counter = Counter::new("core.tile_mmos");
/// Process-global tile-load count (traced backends only).
static TILE_LOADS: Counter = Counter::new("core.tile_loads");
/// Process-global tile-store count (traced backends only).
static TILE_STORES: Counter = Counter::new("core.tile_stores");
/// Per-kernel-ISA completed whole-matrix mmo counts (traced backends
/// only) — which vector tier the datapath actually executed with.
static ISA_MMOS_AVX512: Counter = Counter::new("core.isa_mmos.avx512");
/// See [`ISA_MMOS_AVX512`].
static ISA_MMOS_AVX2: Counter = Counter::new("core.isa_mmos.avx2");
/// See [`ISA_MMOS_AVX512`].
static ISA_MMOS_NEON: Counter = Counter::new("core.isa_mmos.neon");
/// See [`ISA_MMOS_AVX512`].
static ISA_MMOS_SCALAR: Counter = Counter::new("core.isa_mmos.scalar");

/// The `core.isa_mmos.*` counter tracking `isa`.
fn isa_mmos_counter(isa: KernelIsa) -> &'static Counter {
    match isa {
        KernelIsa::Avx512 => &ISA_MMOS_AVX512,
        KernelIsa::Avx2 => &ISA_MMOS_AVX2,
        KernelIsa::Neon => &ISA_MMOS_NEON,
        KernelIsa::Scalar => &ISA_MMOS_SCALAR,
    }
}

/// Running totals of the work a backend has performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Whole-matrix `mmo` invocations.
    pub matrix_mmos: u64,
    /// 16×16 tile-level operations (what one `simd2.mmo` instruction or
    /// one wmma call performs).
    pub tile_mmos: u64,
    /// Tile loads (operand movement).
    pub tile_loads: u64,
    /// Tile stores.
    pub tile_stores: u64,
}

impl std::ops::AddAssign for OpCount {
    fn add_assign(&mut self, rhs: Self) {
        self.matrix_mmos += rhs.matrix_mmos;
        self.tile_mmos += rhs.tile_mmos;
        self.tile_loads += rhs.tile_loads;
        self.tile_stores += rhs.tile_stores;
    }
}

/// Degree of worker parallelism a tiled backend uses for the output tile
/// grid.
///
/// Output tiles are mutually independent and the intra-tile reduction
/// order never changes, so every setting produces **bit-identical**
/// results — the knob trades wall-clock time only. Fault-injected units
/// run parallel too: their injectors address sites by tile *coordinate*,
/// not visit order, so the same plan strikes the same tiles under any
/// worker count and per-worker logs merge back deterministically; see
/// [`MmoUnit::shard`](simd2_fault::MmoUnit::shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Single-threaded reference execution order.
    #[default]
    Sequential,
    /// A fixed worker count (values below 1 are clamped to 1).
    Threads(usize),
    /// One worker per CPU the host reports
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The number of workers this setting resolves to on this host.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
        }
    }
}

/// A whole-matrix SIMD² operation engine.
///
/// Implementations must produce results equivalent to
/// [`simd2_matrix::reference::mmo`] up to the backend's declared
/// precision; this is checked by the validation framework and the
/// cross-backend tests.
pub trait Backend {
    /// Short human-readable backend name.
    fn name(&self) -> &'static str;

    /// Whether operands pass through fp16 (reduced precision).
    fn reduced_precision(&self) -> bool;

    /// Executes `D = C ⊕ (A ⊗ B)`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] when operand shapes are
    /// incompatible, [`BackendError::Exec`] when the underlying engine
    /// faults, and [`BackendError::Corruption`] when an enabled ABFT
    /// check detects a silently corrupted result.
    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError>;

    /// Executes `D = C ⊕ (A ⊗ B)` on a single-threaded schedule,
    /// regardless of any parallelism configuration — the recovery path
    /// after a [`BackendError::WorkerPanic`]. Defaults to [`Backend::mmo`]
    /// for backends that are already sequential.
    fn mmo_sequential(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        self.mmo(op, a, b, c)
    }

    /// Executes `D = C ⊕ (A ⊗ B)` with per-operand *representation*
    /// declarations ([`MatrixRef`]) — the seam that lets a recorded
    /// algorithm run unchanged while a lowering decision (dense, CSR,
    /// 2:4-structured) rides along with each operand.
    ///
    /// A declaration is a schedule hint, never a semantic change:
    /// whatever the representation, the output must be **bit-identical**
    /// to the dense datapath. The default therefore validates the
    /// declarations ([`crate::validate::check_mmo_operands_ref`]) and
    /// falls back to [`Backend::mmo`]; representation-aware backends
    /// (e.g. `simd2-sparse`'s Gustavson spGEMM) override it with
    /// compressed kernels that preserve the bit-identity contract.
    ///
    /// # Errors
    ///
    /// As [`Backend::mmo`], plus [`BackendError::Repr`] when a
    /// declaration is invalid for the operation.
    fn mmo_ref(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
    ) -> Result<Matrix, BackendError> {
        crate::validate::check_mmo_operands_ref(op, a, b, c)?;
        self.mmo(op, a.matrix, b.matrix, c.matrix)
    }

    /// Executes a batch of *mutually independent* `D = C ⊕ (A ⊗ B)`
    /// steps, returning one output per step in submission order.
    ///
    /// The default runs the steps one by one through [`Backend::mmo`];
    /// parallel backends may override it to dispatch the whole batch
    /// across their worker pool — results and counters must stay
    /// bit-identical to the sequential default.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::mmo`]. On error no outputs are
    /// returned, but counters for steps that did complete are retained
    /// (mirroring a sequential loop that fails partway).
    fn mmo_batch(&mut self, steps: &[MmoArgs<'_>]) -> Result<Vec<Matrix>, BackendError> {
        steps
            .iter()
            .map(|s| self.mmo(s.op, s.a, s.b, s.c))
            .collect()
    }

    /// The instruction set this backend's tile kernel executes with.
    /// Backends without a selectable kernel report the scalar tier.
    fn kernel_isa(&self) -> KernelIsa {
        KernelIsa::Scalar
    }

    /// Pins the backend's tile kernel to `isa` — the degradation rung a
    /// resilience layer pulls when repeated ABFT detections implicate a
    /// vector tier. Returns whether the backend honoured the pin;
    /// backends without a selectable kernel refuse (the default).
    fn pin_kernel_isa(&mut self, isa: KernelIsa) -> bool {
        let _ = isa;
        false
    }

    /// Permanently drops the backend to its sequential schedule — the
    /// degradation rung for repeated worker panics. Returns whether the
    /// backend honoured the demotion; already-sequential backends
    /// refuse (the default).
    fn force_sequential(&mut self) -> bool {
        false
    }

    /// Fault-log entries evicted from the backend's bounded ring buffer
    /// (the `simd2-fault` injector `dropped` counter); zero for
    /// backends without an injector.
    fn fault_log_dropped(&self) -> u64 {
        0
    }

    /// Advisory hint from the plan optimizer that a fused RAW chain of
    /// `steps` same-shape MMOs with output shape `shape` is about to
    /// replay, letting the backend pre-allocate shared output slab
    /// residency off the replay's critical path. Purely an allocation
    /// hint: it must never change outputs, counters, or telemetry
    /// spans. The default ignores it.
    fn prepare_chain(&mut self, shape: (usize, usize), steps: usize) {
        let _ = (shape, steps);
    }

    /// Work counters accumulated so far.
    fn op_count(&self) -> OpCount;

    /// Resets the work counters.
    fn reset_count(&mut self);
}

/// Borrowed operands of one `D = C ⊕ (A ⊗ B)` step, as submitted to
/// [`Backend::mmo_batch`].
#[derive(Clone, Copy, Debug)]
pub struct MmoArgs<'a> {
    /// Semiring operation.
    pub op: OpKind,
    /// Left operand (`m×k`).
    pub a: &'a Matrix,
    /// Right operand (`k×n`).
    pub b: &'a Matrix,
    /// Accumulator (`m×n`).
    pub c: &'a Matrix,
    /// Declared representation of `[a, b, c]` — dense unless the plan
    /// (or caller) lowered an operand to a sparse form. Backends
    /// without sparse kernels may ignore this: representation never
    /// changes the answer.
    pub reprs: [OperandRepr; 3],
}

impl<'a> MmoArgs<'a> {
    /// Dense-operand step args (the common case).
    pub fn new(op: OpKind, a: &'a Matrix, b: &'a Matrix, c: &'a Matrix) -> Self {
        Self {
            op,
            a,
            b,
            c,
            reprs: [OperandRepr::Dense; 3],
        }
    }

    /// The left operand as a [`MatrixRef`] with its declared repr.
    pub fn a_ref(&self) -> MatrixRef<'a> {
        MatrixRef::new(self.a, self.reprs[0])
    }

    /// The right operand as a [`MatrixRef`] with its declared repr.
    pub fn b_ref(&self) -> MatrixRef<'a> {
        MatrixRef::new(self.b, self.reprs[1])
    }

    /// The accumulator as a [`MatrixRef`] with its declared repr.
    pub fn c_ref(&self) -> MatrixRef<'a> {
        MatrixRef::new(self.c, self.reprs[2])
    }

    /// Whether every operand is declared dense.
    pub fn is_dense(&self) -> bool {
        self.reprs.iter().all(|r| r.is_dense())
    }
}

/// Emits the [`span::MMO`] begin event for a whole-matrix operation.
/// `isa` is the instruction set the backend's tile kernel executes with
/// (every worker of one mmo runs the same kernel tier).
fn begin_mmo(tracer: &Tracer, op: OpKind, grid: &TileGrid, workers: usize, isa: KernelIsa) {
    tracer.begin(
        span::MMO,
        &[
            field("op", op.name()),
            field("m", grid.m),
            field("n", grid.n),
            field("k", grid.k),
            field("workers", workers),
            field("isa", isa.name()),
        ],
    );
}

/// Emits the [`span::MMO`] end event for a *completed* whole-matrix mmo
/// and bumps the process-global work counters (including the per-ISA
/// `core.isa_mmos.*` counter) by the same delta, so traced span totals
/// and [`Backend::op_count`] advance in lock-step: a failed mmo
/// contributes to neither.
fn finish_mmo(tracer: &Tracer, op: OpKind, delta: OpCount, isa: KernelIsa) {
    if !tracer.enabled() {
        return;
    }
    MATRIX_MMOS.add(delta.matrix_mmos);
    TILE_MMOS.add(delta.tile_mmos);
    TILE_LOADS.add(delta.tile_loads);
    TILE_STORES.add(delta.tile_stores);
    isa_mmos_counter(isa).add(delta.matrix_mmos);
    tracer.end(
        span::MMO,
        &[
            field("op", op.name()),
            field("tile_mmos", delta.tile_mmos),
            field("tile_loads", delta.tile_loads),
            field("tile_stores", delta.tile_stores),
        ],
    );
}

/// Emits the [`span::TILE_PANEL`] summary for one executed row panel
/// (`rows` is the panel's height in elements). Sequential schedules
/// emit exactly one, covering the whole grid.
fn emit_tile_panel(tracer: &Tracer, panel_idx: usize, rows: usize, count: OpCount) {
    tracer.end(
        span::TILE_PANEL,
        &[
            field("panel", panel_idx),
            field("rows", rows),
            field("tile_mmos", count.tile_mmos),
            field("tile_loads", count.tile_loads),
            field("tile_stores", count.tile_stores),
        ],
    );
}

/// Plain-loop fp32 backend — the correctness oracle, standing in for the
/// cuASR/CUTLASS CUDA-core library of §5.1.
///
/// Tile counters are still maintained (as if the computation were
/// partitioned into 16×16 tiles) so both configurations report comparable
/// statistics.
#[derive(Clone, Debug, Default)]
pub struct ReferenceBackend {
    count: OpCount,
    tracer: Tracer,
}

impl ReferenceBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry tracer emitting [`span::MMO`] spans.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

impl Backend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference (CUDA cores, fp32)"
    }

    fn reduced_precision(&self) -> bool {
        false
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        crate::validate::check_mmo_operands(op, a, b, c)?;
        let grid = TileGrid::new(a.rows(), b.cols(), a.cols(), ISA_TILE);
        begin_mmo(&self.tracer, op, &grid, 1, KernelIsa::Scalar);
        let d = reference::mmo(op, a, b, c)?;
        let delta = OpCount {
            matrix_mmos: 1,
            tile_mmos: grid.tile_ops() as u64,
            tile_loads: (2 * grid.tile_ops() + grid.output_tiles()) as u64,
            tile_stores: grid.output_tiles() as u64,
        };
        self.count += delta;
        finish_mmo(&self.tracer, op, delta, KernelIsa::Scalar);
        Ok(d)
    }

    fn op_count(&self) -> OpCount {
        self.count
    }

    fn reset_count(&mut self) {
        self.count = OpCount::default();
    }
}

/// Tiled functional SIMD²-unit backend: partitions operands into 16×16
/// tiles and drives an [`MmoUnit`] per tile step, with fp16 operand
/// quantisation — the functional semantics of the proposed hardware.
///
/// The unit is generic so the same tiling loop runs over the pristine
/// [`Simd2Unit`] or a [`simd2_fault::FaultySimd2Unit`] whose datapath
/// injects faults.
///
/// With a [`Parallelism`] setting above one worker, units that offer
/// [`MmoUnit::shard`] execute the output tile grid as row panels across
/// a scoped worker pool — bit-identical to sequential execution (tiles
/// are independent; per-tile reduction order is unchanged), with exact
/// merged counters. Fault-injected units shard too: coordinate-addressed
/// injection makes the same plan strike the same tiles under any worker
/// count, and per-worker fault logs merge back in panel order so the
/// merged log equals the sequential one. A worker panic never aborts the
/// process — it surfaces as [`BackendError::WorkerPanic`] after every
/// other worker drains.
#[derive(Clone, Debug)]
pub struct TiledBackend<U: MmoUnit = Simd2Unit> {
    unit: U,
    count: OpCount,
    parallelism: Parallelism,
    tracer: Tracer,
    /// Zero-filled output slabs pre-allocated by
    /// [`Backend::prepare_chain`], consumed newest-fit-first by
    /// subsequent MMOs. Never reused after hand-off (outputs are owned
    /// by the caller), so every pooled slab is all-zero — exactly what
    /// the non-pooled paths allocate.
    slab_pool: Vec<Vec<f32>>,
}

/// Upper bound on pooled output slabs held by [`Backend::prepare_chain`]
/// between replays, so a pathological chain hint cannot pin unbounded
/// memory.
const SLAB_POOL_CAP: usize = 64;

/// Takes a pooled zero-filled `m × n` slab if one fits, else allocates —
/// bit-identical either way, since pooled slabs are zero-filled and
/// single-use.
fn pooled_output(pool: &mut Vec<Vec<f32>>, m: usize, n: usize) -> Matrix {
    match pool.iter().position(|slab| slab.len() == m * n) {
        Some(i) => Matrix::from_vec(m, n, pool.swap_remove(i)),
        None => Matrix::zeros(m, n),
    }
}

// A single, non-generic `Default` impl so `TiledBackend::default()`
// still infers the default unit type.
impl Default for TiledBackend<Simd2Unit> {
    fn default() -> Self {
        Self::with_unit(Simd2Unit::default())
    }
}

impl TiledBackend<Simd2Unit> {
    /// Creates the backend with the default fp16-input unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the backend with the default unit and the given
    /// parallelism setting.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        let mut be = Self::default();
        be.set_parallelism(parallelism);
        be
    }
}

impl<U: MmoUnit> TiledBackend<U> {
    /// Creates the backend over a specific unit.
    pub fn with_unit(unit: U) -> Self {
        Self {
            unit,
            count: OpCount::default(),
            parallelism: Parallelism::default(),
            tracer: Tracer::off(),
            slab_pool: Vec::new(),
        }
    }

    /// Attaches a telemetry tracer. Every subsequent [`Backend::mmo`]
    /// emits a [`span::MMO`] begin/end span plus one [`span::TILE_PANEL`]
    /// summary per executed panel (workers share the sink via cloned
    /// tracers); completed-work deltas also feed the process-global
    /// `core.*` counters. Span-derived totals equal
    /// [`Backend::op_count`] exactly: failed operations emit no end
    /// event and bump nothing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The underlying unit (e.g. for fault telemetry).
    pub fn unit(&self) -> &U {
        &self.unit
    }

    /// The instruction set the unit's tile kernel executes with —
    /// reported in [`span::MMO`] begin spans as the `isa` field and
    /// accumulated per tier in the `core.isa_mmos.*` counters.
    pub fn kernel_isa(&self) -> KernelIsa {
        self.unit.kernel_isa()
    }

    /// Unwraps into the underlying unit.
    pub fn into_unit(self) -> U {
        self.unit
    }

    /// The configured parallelism setting.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the parallelism of subsequent [`Backend::mmo`] calls.
    ///
    /// Results are bit-identical across settings; units without a
    /// [`shard`](MmoUnit::shard) seam execute sequentially regardless.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }
}

/// Executes one output panel of the tile grid on a worker shard of the
/// unit, writing results into the panel's row slab of `D` and counting
/// its own work (merged by the caller so totals stay exact).
fn run_panel<U: MmoUnit>(
    unit: &mut U,
    op: OpKind,
    (a, b, c): (&Matrix, &Matrix, &Matrix),
    grid: &TileGrid,
    panel: std::ops::Range<usize>,
    slab: &mut [f32],
) -> OpCount {
    let row0 = grid.panel_rows(&panel).start;
    let mut count = OpCount::default();
    for ti in panel {
        for tj in 0..grid.n_tiles {
            let mut acc = tiling::load_c_tile::<ISA_TILE>(op, c, ti, tj);
            count.tile_loads += 1;
            for tk in 0..grid.k_tiles {
                let at = tiling::load_a_tile::<ISA_TILE>(op, a, ti, tk);
                let bt = tiling::load_b_tile::<ISA_TILE>(op, b, tk, tj);
                acc = unit.execute_tile_at(TileCoord::new(ti, tj, tk), op, &at, &bt, &acc);
                count.tile_loads += 2;
                count.tile_mmos += 1;
            }
            tiling::store_d_tile_in_panel(slab, row0, grid.n, &acc, ti, tj);
            count.tile_stores += 1;
        }
    }
    count
}

/// Stringifies a worker's panic payload for [`BackendError::WorkerPanic`].
fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => match other.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

/// The parallel tile-grid schedule: output tile rows are split into one
/// contiguous panel per worker ([`TileGrid::row_panels`]), each worker
/// owns its panel's disjoint row slab of `D` and a private unit shard,
/// and per-worker [`OpCount`]s and shard state (fault logs) are merged
/// after the scope joins — shards in panel order, so merged fault logs
/// are identical to the sequential schedule's. Panel assignment only
/// partitions *independent* output tiles and each tile's k-loop runs in
/// the exact sequential order, so the result is bit-identical to the
/// sequential schedule.
///
/// **Panic containment:** a panicking worker is caught at its join and
/// surfaced as [`BackendError::WorkerPanic`]; every other worker is
/// still joined (the output buffer is only dropped once no thread can
/// touch it) and its shard is still absorbed, so the process never
/// aborts and telemetry from surviving workers is never lost.
#[allow(clippy::too_many_arguments)]
fn mmo_parallel<U: MmoUnit + Send>(
    parent: &mut U,
    tracer: &Tracer,
    shards: Vec<U>,
    op: OpKind,
    (a, b, c): (&Matrix, &Matrix, &Matrix),
    grid: &TileGrid,
    panels: Vec<std::ops::Range<usize>>,
    // Caller-provided zero-filled `grid.m × grid.n` output (possibly a
    // pooled slab from a `prepare_chain` hint).
    mut d: Matrix,
) -> Result<(Matrix, OpCount), BackendError> {
    let mut total = OpCount::default();
    let mut first_panic: Option<BackendError> = None;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(panels.len());
        let mut rest: &mut [f32] = d.as_mut_slice();
        for (panel_idx, (panel, mut shard)) in panels.into_iter().zip(shards).enumerate() {
            let rows = grid.panel_rows(&panel);
            let (slab, tail) = std::mem::take(&mut rest).split_at_mut(rows.len() * grid.n);
            rest = tail;
            let worker_tracer = tracer.clone();
            handles.push(s.spawn(move || {
                let count = run_panel(&mut shard, op, (a, b, c), grid, panel, slab);
                emit_tile_panel(&worker_tracer, panel_idx, rows.len(), count);
                (count, shard)
            }));
        }
        // Disjoint-slab invariant: the panels partition 0..m_tiles
        // contiguously and `panel_rows` clips to the true height, so the
        // per-panel slabs must consume the whole of `D` — nothing is
        // left zero-initialised by a panel-split bug.
        assert!(
            rest.is_empty(),
            "row panels must cover every output row exactly once"
        );
        for (panel_idx, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((count, shard)) => {
                    total += count;
                    parent.absorb(shard);
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(BackendError::WorkerPanic {
                            panel: panel_idx,
                            payload: panic_payload_message(payload),
                        });
                    }
                }
            }
        }
    });
    match first_panic {
        Some(err) => Err(err),
        None => Ok((d, total)),
    }
}

impl<U: MmoUnit + Send> Backend for TiledBackend<U> {
    fn name(&self) -> &'static str {
        "SIMD2 units (tiled, fp16 operands)"
    }

    fn reduced_precision(&self) -> bool {
        self.unit.reduced_precision()
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        crate::validate::check_mmo_operands(op, a, b, c)?;
        let grid = TileGrid::new(a.rows(), b.cols(), a.cols(), ISA_TILE);
        self.unit.begin_matrix_mmo();
        let workers = self.parallelism.worker_count();
        begin_mmo(&self.tracer, op, &grid, workers, self.unit.kernel_isa());
        let mut delta;
        let d;
        'done: {
            if workers > 1 && grid.m_tiles > 1 {
                let panels = grid.row_panels(workers);
                let shards: Option<Vec<U>> = panels.iter().map(|_| self.unit.shard()).collect();
                if let Some(shards) = shards {
                    let out = pooled_output(&mut self.slab_pool, grid.m, grid.n);
                    let (dp, count) = mmo_parallel(
                        &mut self.unit,
                        &self.tracer,
                        shards,
                        op,
                        (a, b, c),
                        &grid,
                        panels,
                        out,
                    )?;
                    d = dp;
                    delta = count;
                    break 'done;
                }
            }
            // Sequential schedule: the whole grid is one panel (row slab
            // starting at element row 0), executed in the exact Figure 6
            // loop order `run_panel` preserves — bit-identical to the
            // panel-parallel schedule and to the pre-unification loop.
            let mut ds = pooled_output(&mut self.slab_pool, grid.m, grid.n);
            let panel = 0..grid.m_tiles;
            let rows = grid.panel_rows(&panel).len();
            let count = run_panel(
                &mut self.unit,
                op,
                (a, b, c),
                &grid,
                panel,
                ds.as_mut_slice(),
            );
            emit_tile_panel(&self.tracer, 0, rows, count);
            d = ds;
            delta = count;
        }
        delta.matrix_mmos = 1;
        self.count += delta;
        finish_mmo(&self.tracer, op, delta, self.unit.kernel_isa());
        Ok(d)
    }

    fn mmo_sequential(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        let saved = self.parallelism;
        self.parallelism = Parallelism::Sequential;
        let result = self.mmo(op, a, b, c);
        self.parallelism = saved;
        result
    }

    /// Batched schedule: each step runs its *whole* tile grid on one
    /// worker shard, with up to `workers` steps in flight at a time —
    /// inter-step parallelism instead of the intra-step row panels of
    /// [`Backend::mmo`]. Shards are taken in step order (each after its
    /// own [`MmoUnit::begin_matrix_mmo`]) and absorbed in step order, so
    /// fault draws, merged logs and counters are identical to replaying
    /// the same steps sequentially; per-tile reduction order never
    /// changes, so outputs are bit-identical too. A panicking step
    /// surfaces as [`BackendError::WorkerPanic`] (with its step index as
    /// the `panel`) after the in-flight chunk drains; completed steps
    /// still count.
    fn mmo_batch(&mut self, steps: &[MmoArgs<'_>]) -> Result<Vec<Matrix>, BackendError> {
        let workers = self.parallelism.worker_count();
        if steps.len() <= 1 || workers <= 1 || self.unit.shard().is_none() {
            return steps
                .iter()
                .map(|s| self.mmo(s.op, s.a, s.b, s.c))
                .collect();
        }
        // Validate every step before any unit state advances, so a
        // malformed step rejects the whole batch without side effects.
        let mut grids = Vec::with_capacity(steps.len());
        for s in steps {
            crate::validate::check_mmo_operands(s.op, s.a, s.b, s.c)?;
            grids.push(TileGrid::new(s.a.rows(), s.b.cols(), s.a.cols(), ISA_TILE));
        }
        let mut shards = Vec::with_capacity(steps.len());
        for _ in steps {
            self.unit.begin_matrix_mmo();
            shards.push(
                self.unit
                    .shard()
                    .expect("shard availability was probed before the batch began"),
            );
        }
        let mut outputs: Vec<Option<Matrix>> = steps.iter().map(|_| None).collect();
        let mut first_panic: Option<BackendError> = None;
        let mut shards = shards.into_iter();
        for chunk_base in (0..steps.len()).step_by(workers) {
            let chunk = chunk_base..(chunk_base + workers).min(steps.len());
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(chunk.len());
                for idx in chunk {
                    let step = &steps[idx];
                    let grid = &grids[idx];
                    let mut shard = shards.next().expect("one shard per step");
                    begin_mmo(&self.tracer, step.op, grid, 1, self.unit.kernel_isa());
                    let worker_tracer = self.tracer.clone();
                    // Pooled slabs are taken on the dispatch thread so a
                    // `prepare_chain` hint moves the allocation off the
                    // worker's critical path.
                    let mut d = pooled_output(&mut self.slab_pool, grid.m, grid.n);
                    handles.push((
                        idx,
                        s.spawn(move || {
                            let panel = 0..grid.m_tiles;
                            let rows = grid.panel_rows(&panel).len();
                            let count = run_panel(
                                &mut shard,
                                step.op,
                                (step.a, step.b, step.c),
                                grid,
                                panel,
                                d.as_mut_slice(),
                            );
                            emit_tile_panel(&worker_tracer, 0, rows, count);
                            (d, count, shard)
                        }),
                    ));
                }
                for (idx, handle) in handles {
                    match handle.join() {
                        Ok((d, count, shard)) => {
                            self.unit.absorb(shard);
                            let mut delta = count;
                            delta.matrix_mmos = 1;
                            self.count += delta;
                            finish_mmo(&self.tracer, steps[idx].op, delta, self.unit.kernel_isa());
                            outputs[idx] = Some(d);
                        }
                        Err(payload) => {
                            if first_panic.is_none() {
                                first_panic = Some(BackendError::WorkerPanic {
                                    panel: idx,
                                    payload: panic_payload_message(payload),
                                });
                            }
                        }
                    }
                }
            });
            if first_panic.is_some() {
                break;
            }
        }
        match first_panic {
            Some(err) => Err(err),
            None => Ok(outputs
                .into_iter()
                .map(|d| d.expect("every step joined without panicking"))
                .collect()),
        }
    }

    fn kernel_isa(&self) -> KernelIsa {
        self.unit.kernel_isa()
    }

    fn pin_kernel_isa(&mut self, isa: KernelIsa) -> bool {
        self.unit.repin_kernel(isa)
    }

    /// Pre-allocates zero-filled output slabs for a fused RAW chain, up
    /// to [`SLAB_POOL_CAP`] pooled slabs total. Subsequent MMOs with a
    /// matching output size take a pooled slab instead of allocating;
    /// outputs, counters and telemetry are unchanged.
    fn prepare_chain(&mut self, shape: (usize, usize), steps: usize) {
        let (m, n) = shape;
        if m * n == 0 {
            return;
        }
        let room = SLAB_POOL_CAP.saturating_sub(self.slab_pool.len());
        for _ in 0..steps.min(room) {
            self.slab_pool.push(vec![0.0; m * n]);
        }
    }

    fn force_sequential(&mut self) -> bool {
        if self.parallelism == Parallelism::Sequential {
            return false;
        }
        self.parallelism = Parallelism::Sequential;
        true
    }

    fn fault_log_dropped(&self) -> u64 {
        self.unit.fault_dropped()
    }

    fn op_count(&self) -> OpCount {
        self.count
    }

    fn reset_count(&mut self) {
        self.count = OpCount::default();
    }
}

/// ISA-level backend: emits a real SIMD² instruction stream per output
/// tile and runs it through the warp-level [`Executor`] — the deepest
/// (and slowest) path through the stack, used to validate that the ISA,
/// assembler and executor compose into correct whole-matrix results.
#[derive(Debug, Default)]
pub struct IsaBackend {
    count: OpCount,
    exec_stats: ExecStats,
    injector: Option<Box<dyn FaultInjector>>,
    abft: Option<AbftConfig>,
    tracer: Tracer,
}

impl IsaBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry tracer emitting [`span::MMO`] spans.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Cumulative ISA-level execution statistics.
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec_stats
    }

    /// Installs a fault injector on the executor datapath. The injector
    /// persists across `mmo` calls (site counters keep advancing), so a
    /// retried operation sees fresh fault draws.
    pub fn set_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Removes and returns the installed injector, e.g. to read its log.
    pub fn take_injector(&mut self) -> Option<Box<dyn FaultInjector>> {
        self.injector.take()
    }

    /// The installed injector, for telemetry.
    pub fn injector(&self) -> Option<&dyn FaultInjector> {
        self.injector.as_deref()
    }

    /// Enables per-instruction ABFT verification inside the executor;
    /// detections surface as [`BackendError::Corruption`].
    pub fn enable_verification(&mut self, config: AbftConfig) {
        self.abft = Some(config);
    }

    /// Disables ABFT verification.
    pub fn disable_verification(&mut self) {
        self.abft = None;
    }
}

impl Backend for IsaBackend {
    fn name(&self) -> &'static str {
        "SIMD2 ISA executor"
    }

    fn reduced_precision(&self) -> bool {
        true
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        crate::validate::check_mmo_operands(op, a, b, c)?;
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let grid = TileGrid::new(m, n, k, ISA_TILE);
        // The executor drives a default `Simd2Unit`, so the datapath runs
        // on the process-wide selected kernel tier.
        let isa = Simd2Unit::new().kernel_isa();
        begin_mmo(&self.tracer, op, &grid, 1, isa);
        let pads = tiling::pad_values(op);
        let (mp, np, kp) = (
            grid.m_tiles * ISA_TILE,
            grid.n_tiles * ISA_TILE,
            grid.k_tiles * ISA_TILE,
        );

        // Shared-memory layout: A | B | C/D, padded to tile multiples.
        let a_base = 0usize;
        let b_base = mp * kp;
        let c_base = b_base + kp * np;
        let total = c_base + mp * np;
        let mut mem = SharedMemory::new(total);

        let pad_write = |mem: &mut SharedMemory,
                         base: usize,
                         ld: usize,
                         src: &Matrix,
                         rows: usize,
                         cols: usize,
                         fill: f32| {
            let padded = Matrix::from_fn(rows, cols, |r, c| src.get(r, c).unwrap_or(fill));
            mem.write_matrix(base, ld, &padded)
        };
        pad_write(&mut mem, a_base, kp, a, mp, kp, pads.operand)?;
        pad_write(&mut mem, b_base, np, b, kp, np, pads.operand)?;
        pad_write(&mut mem, c_base, np, c, mp, np, pads.accumulator)?;

        // One program: for each output tile, load C, stream the k tiles,
        // store D in place of C.
        let (ra, rb, rc) = (MatrixReg::new(0), MatrixReg::new(1), MatrixReg::new(2));
        let mut program: Vec<Instruction> = Vec::new();
        for (ti, tj) in grid.output_coords() {
            let c_addr = (c_base + ti * ISA_TILE * np + tj * ISA_TILE) as u32;
            program.push(Instruction::Load {
                dst: rc,
                dtype: Dtype::Fp32,
                addr: c_addr,
                ld: np as u32,
            });
            for tk in 0..grid.k_tiles {
                let a_addr = (a_base + ti * ISA_TILE * kp + tk * ISA_TILE) as u32;
                let b_addr = (b_base + tk * ISA_TILE * np + tj * ISA_TILE) as u32;
                program.push(Instruction::Load {
                    dst: ra,
                    dtype: Dtype::Fp16,
                    addr: a_addr,
                    ld: kp as u32,
                });
                program.push(Instruction::Load {
                    dst: rb,
                    dtype: Dtype::Fp16,
                    addr: b_addr,
                    ld: np as u32,
                });
                program.push(Instruction::Mmo {
                    op,
                    d: rc,
                    a: ra,
                    b: rb,
                    c: rc,
                });
            }
            program.push(Instruction::Store {
                src: rc,
                addr: c_addr,
                ld: np as u32,
            });
        }

        let mut exec = Executor::new(mem);
        if let Some(injector) = self.injector.take() {
            exec.set_injector(injector);
        }
        if let Some(config) = self.abft {
            exec.enable_verification(config);
        }
        let run = exec.run(&program);
        // Recover the injector even on a detection, so its site counters
        // (and fault log) survive into the caller's retry.
        if let Some(injector) = exec.take_injector() {
            self.injector = Some(injector);
        }
        let stats = run?;
        let delta = OpCount {
            matrix_mmos: 1,
            tile_mmos: stats.total_mmos(),
            tile_loads: stats.loads,
            tile_stores: stats.stores,
        };
        self.count += delta;
        finish_mmo(&self.tracer, op, delta, isa);
        self.exec_stats.merge(&stats);

        let padded_d = exec.memory().read_matrix(c_base, np, mp, np)?;
        Ok(Matrix::from_fn(m, n, |r, c| padded_d[(r, c)]))
    }

    fn fault_log_dropped(&self) -> u64 {
        self.injector.as_deref().map_or(0, FaultInjector::dropped)
    }

    fn op_count(&self) -> OpCount {
        self.count
    }

    fn reset_count(&mut self) {
        self.count = OpCount::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::gen;
    use simd2_semiring::precision::quantize_f16;
    use simd2_semiring::ALL_OPS;

    fn operands(op: OpKind, m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
        let mut a = gen::random_operands_for(op, m, k, 42);
        let mut b = gen::random_operands_for(op, k, n, 43);
        // Quantise inputs so fp32 reference and fp16 backends agree exactly
        // except for additive-reduction rounding.
        for v in a.as_mut_slice() {
            *v = quantize_f16(*v);
        }
        for v in b.as_mut_slice() {
            *v = quantize_f16(*v);
        }
        let c = Matrix::filled(m, n, op.reduce_identity_f32());
        (a, b, c)
    }

    fn tol(op: OpKind, k: usize) -> f32 {
        match op {
            OpKind::PlusMul | OpKind::PlusNorm => 1e-3 * k as f32,
            _ => 0.0,
        }
    }

    #[test]
    fn tiled_backend_matches_reference_all_ops() {
        for op in ALL_OPS {
            let (a, b, c) = operands(op, 20, 36, 52); // ragged shapes
            let want = ReferenceBackend::new().mmo(op, &a, &b, &c).unwrap();
            let got = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
            let diff = got.max_abs_diff(&want).unwrap();
            assert!(diff <= tol(op, 52), "{op}: diff {diff}");
        }
    }

    #[test]
    fn isa_backend_matches_tiled_backend() {
        for op in ALL_OPS {
            let (a, b, c) = operands(op, 18, 33, 17);
            let tiled = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
            let isa = IsaBackend::new().mmo(op, &a, &b, &c).unwrap();
            // Same unit, same tiling order ⇒ bit-identical.
            assert_eq!(tiled, isa, "{op}");
        }
    }

    #[test]
    fn tile_counts_match_grid_arithmetic() {
        let op = OpKind::MinPlus;
        let (a, b, c) = operands(op, 40, 40, 40);
        let mut be = TiledBackend::new();
        be.mmo(op, &a, &b, &c).unwrap();
        // 40 → 3 tiles per dim: 27 tile mmos, 9 output tiles.
        let count = be.op_count();
        assert_eq!(count.matrix_mmos, 1);
        assert_eq!(count.tile_mmos, 27);
        assert_eq!(count.tile_stores, 9);
        assert_eq!(count.tile_loads, 9 + 2 * 27);
        be.reset_count();
        assert_eq!(be.op_count(), OpCount::default());
    }

    #[test]
    fn isa_backend_counts_agree_with_tiled() {
        let op = OpKind::OrAnd;
        let (a, b, c) = operands(op, 32, 32, 32);
        let mut t = TiledBackend::new();
        let mut i = IsaBackend::new();
        t.mmo(op, &a, &b, &c).unwrap();
        i.mmo(op, &a, &b, &c).unwrap();
        assert_eq!(t.op_count().tile_mmos, i.op_count().tile_mmos);
        assert_eq!(t.op_count().tile_stores, i.op_count().tile_stores);
        assert_eq!(i.exec_stats().mmos[&op], 8);
    }

    #[test]
    fn parallel_backend_is_bit_identical_to_sequential() {
        for op in ALL_OPS {
            let (a, b, c) = operands(op, 70, 23, 37); // ragged, 5 tile rows
            let seq = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
            for workers in [2usize, 4, 8] {
                let mut be = TiledBackend::with_parallelism(Parallelism::Threads(workers));
                let par = be.mmo(op, &a, &b, &c).unwrap();
                // Bit-for-bit, not approx: same tiles, same reduction order.
                assert!(
                    seq.as_slice()
                        .iter()
                        .zip(par.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{op} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_counters_stay_exact() {
        let op = OpKind::MinPlus;
        let (a, b, c) = operands(op, 80, 48, 33);
        let mut seq = TiledBackend::new();
        seq.mmo(op, &a, &b, &c).unwrap();
        for workers in [2usize, 3, 8] {
            let mut par = TiledBackend::with_parallelism(Parallelism::Threads(workers));
            par.mmo(op, &a, &b, &c).unwrap();
            assert_eq!(par.op_count(), seq.op_count(), "{workers} workers");
        }
    }

    /// A batch of independent steps over every op, with mixed ragged
    /// shapes so step grids differ.
    fn batch_operands() -> Vec<(OpKind, Matrix, Matrix, Matrix)> {
        ALL_OPS
            .into_iter()
            .enumerate()
            .map(|(i, op)| {
                let (m, n, k) = (20 + 16 * (i % 3), 23 + 8 * (i % 2), 37);
                let (a, b, c) = operands(op, m, n, k);
                (op, a, b, c)
            })
            .collect()
    }

    #[test]
    fn batched_steps_are_bit_identical_to_sequential_replay() {
        let steps = batch_operands();
        let args: Vec<MmoArgs<'_>> = steps
            .iter()
            .map(|(op, a, b, c)| MmoArgs::new(*op, a, b, c))
            .collect();
        let mut seq = TiledBackend::new();
        let want: Vec<Matrix> = steps
            .iter()
            .map(|(op, a, b, c)| seq.mmo(*op, a, b, c).unwrap())
            .collect();
        for workers in [2usize, 3, 8] {
            let mut be = TiledBackend::with_parallelism(Parallelism::Threads(workers));
            let got = be.mmo_batch(&args).unwrap();
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    g.as_slice()
                        .iter()
                        .zip(w.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "step {i} with {workers} workers"
                );
            }
            assert_eq!(be.op_count(), seq.op_count(), "{workers} workers");
        }
        // The trait default (sequential loop) agrees as well, on every
        // backend.
        let mut byref = ReferenceBackend::new();
        let d = byref.mmo_batch(&args).unwrap();
        assert_eq!(d.len(), want.len());
        assert_eq!(byref.op_count().matrix_mmos, args.len() as u64);
    }

    #[test]
    fn batched_steps_count_and_trace_like_sequential() {
        use simd2_trace::RingSink;
        let steps = batch_operands();
        let args: Vec<MmoArgs<'_>> = steps
            .iter()
            .map(|(op, a, b, c)| MmoArgs::new(*op, a, b, c))
            .collect();
        let ring = RingSink::shared();
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(4))
            .with_tracer(Tracer::to(ring.clone()));
        be.mmo_batch(&args).unwrap();
        let count = be.op_count();
        assert_eq!(count.matrix_mmos, args.len() as u64);
        let events = ring.events();
        let sum = |key: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.span == span::MMO && e.kind == simd2_trace::EventKind::End)
                .map(|e| e.u64(key).unwrap())
                .sum()
        };
        assert_eq!(sum("tile_mmos"), count.tile_mmos);
        assert_eq!(sum("tile_loads"), count.tile_loads);
        assert_eq!(sum("tile_stores"), count.tile_stores);
    }

    #[test]
    fn batched_faulty_units_reproduce_the_sequential_fault_log() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        let op = OpKind::PlusMul;
        let steps: Vec<_> = (0..5).map(|i| operands(op, 36 + 16 * i, 40, 40)).collect();
        let run = |parallelism, batched: bool| {
            let plan = FaultPlan::new(FaultPlanConfig::new(7).with_bit_flip_ppm(200_000));
            let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(plan));
            let mut be = TiledBackend::with_unit(unit);
            be.set_parallelism(parallelism);
            let outputs = if batched {
                let args: Vec<MmoArgs<'_>> = steps
                    .iter()
                    .map(|(a, b, c)| MmoArgs::new(op, a, b, c))
                    .collect();
                be.mmo_batch(&args).unwrap()
            } else {
                steps
                    .iter()
                    .map(|(a, b, c)| be.mmo(op, a, b, c).unwrap())
                    .collect()
            };
            (outputs, be.unit().injector().log(), be.op_count())
        };
        let (d_seq, log_seq, count_seq) = run(Parallelism::Sequential, false);
        let (d_bat, log_bat, count_bat) = run(Parallelism::Threads(3), true);
        // Per-step `begin_matrix_mmo` in submission order + coordinate-
        // addressed sites ⇒ identical strikes, logs, outputs, counters.
        assert_eq!(log_seq, log_bat);
        assert_eq!(d_seq, d_bat);
        assert_eq!(count_seq, count_bat);
        assert!(!log_seq.is_empty(), "campaign should have struck");
    }

    #[test]
    fn batched_step_panic_surfaces_with_its_step_index() {
        use simd2_fault::{PanicProbeUnit, PANIC_PROBE_PAYLOAD};
        let op = OpKind::PlusMul;
        let steps: Vec<_> = (0..4).map(|_| operands(op, 40, 23, 37)).collect();
        // Every step's shard covers tile row 1 (40 rows → 3 tile rows),
        // so every step trips; the *first* panic in step order wins.
        let mut be = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
        be.set_parallelism(Parallelism::Threads(2));
        let args: Vec<MmoArgs<'_>> = steps
            .iter()
            .map(|(a, b, c)| MmoArgs::new(op, a, b, c))
            .collect();
        let err = be.mmo_batch(&args).unwrap_err();
        match &err {
            BackendError::WorkerPanic { panel, payload } => {
                assert_eq!(*panel, 0, "first failed step index is reported");
                assert!(payload.starts_with(PANIC_PROBE_PAYLOAD), "{payload}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The backend stays usable sequentially (parent never panics).
        let (a, b, c) = &steps[0];
        be.mmo_sequential(op, a, b, c).unwrap();
    }

    #[test]
    fn malformed_batch_step_rejects_the_whole_batch_upfront() {
        let op = OpKind::MinPlus;
        let good = operands(op, 40, 40, 40);
        let bad_b = Matrix::zeros(17, 40);
        let args = [
            MmoArgs::new(op, &good.0, &good.1, &good.2),
            MmoArgs::new(op, &good.0, &bad_b, &good.2),
        ];
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(4));
        assert!(be.mmo_batch(&args).is_err());
        // Nothing executed: validation happens before any step runs.
        assert_eq!(be.op_count(), OpCount::default());
    }

    #[test]
    fn parallelism_knob_roundtrips_and_auto_resolves() {
        let mut be = TiledBackend::new();
        assert_eq!(be.parallelism(), Parallelism::Sequential);
        be.set_parallelism(Parallelism::Threads(0));
        assert_eq!(be.parallelism().worker_count(), 1, "clamped to one worker");
        assert_eq!(Parallelism::Threads(4).worker_count(), 4);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
    }

    #[test]
    fn faulty_units_run_the_parallel_path_bit_identically() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        let op = OpKind::PlusMul;
        let (a, b, c) = operands(op, 70, 40, 40); // 5 tile rows
        let faulty = |threads| {
            let plan = FaultPlan::new(FaultPlanConfig::new(7).with_bit_flip_ppm(200_000));
            let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(plan));
            let mut be = TiledBackend::with_unit(unit);
            be.set_parallelism(threads);
            let d = be.mmo(op, &a, &b, &c).unwrap();
            let log = be.unit().injector().log();
            let count = be.op_count();
            (d, log, count)
        };
        let (d_seq, log_seq, count_seq) = faulty(Parallelism::Sequential);
        for workers in [2usize, 3, 8] {
            let (d_par, log_par, count_par) = faulty(Parallelism::Threads(workers));
            // Coordinate-addressed sites: the same plan strikes the same
            // tiles regardless of panel assignment, logs merge in panel
            // order, counters merge exactly.
            assert_eq!(log_seq, log_par, "{workers} workers");
            assert_eq!(d_seq, d_par, "{workers} workers");
            assert_eq!(count_seq, count_par, "{workers} workers");
        }
        assert!(
            !log_seq.is_empty(),
            "campaign should have struck at this rate"
        );
    }

    #[test]
    fn faulty_unit_retry_draws_fresh_faults_on_the_parallel_path() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        let op = OpKind::MinPlus;
        let (a, b, c) = operands(op, 60, 30, 30);
        let plan = FaultPlan::new(FaultPlanConfig::new(11).with_transient_nan_ppm(300_000));
        let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(plan));
        let mut be = TiledBackend::with_unit(unit);
        be.set_parallelism(Parallelism::Threads(4));
        let first = be.mmo(op, &a, &b, &c).unwrap();
        let second = be.mmo(op, &a, &b, &c).unwrap();
        // The matrix-mmo sequence number advances between calls, so the
        // second execution is an independent draw — at a 30% per-tile
        // rate on 16 output tiles the two strike sets differ.
        assert_ne!(
            first, second,
            "re-execution must see fresh transient faults"
        );
        assert_eq!(be.unit().injector().mmo_seq(), 2);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_abort() {
        use simd2_fault::{PanicProbeUnit, PANIC_PROBE_PAYLOAD};
        let op = OpKind::PlusMul;
        let (a, b, c) = operands(op, 70, 23, 37); // 5 tile rows
        let mut be = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 2));
        be.set_parallelism(Parallelism::Threads(4));
        let err = be.mmo(op, &a, &b, &c).unwrap_err();
        match &err {
            BackendError::WorkerPanic { panel, payload } => {
                // 5 tile rows over 4 workers: row 2 lands in panel 1.
                assert_eq!(*panel, 1);
                assert!(payload.starts_with(PANIC_PROBE_PAYLOAD), "{payload}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The backend stays usable: the sequential schedule (parent
        // unit, not a shard) completes the same operation.
        let d = be.mmo_sequential(op, &a, &b, &c).unwrap();
        let want = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
        assert_eq!(d, want);
    }

    #[test]
    fn worker_panic_contributes_no_completed_work_counters() {
        use simd2_fault::{PanicProbeUnit, PANIC_PROBE_PAYLOAD};
        let op = OpKind::MinPlus;
        let (a, b, c) = operands(op, 80, 32, 32); // 5 tile rows
        let mut be = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 0));
        be.set_parallelism(Parallelism::Threads(5));
        let err = be.mmo(op, &a, &b, &c).unwrap_err();
        assert!(err.is_worker_panic());
        assert!(err.to_string().contains(PANIC_PROBE_PAYLOAD));
        // A failed mmo contributes no completed-work counters.
        assert_eq!(be.op_count(), OpCount::default());
    }

    #[test]
    fn span_totals_equal_op_count_on_both_schedules() {
        use simd2_trace::RingSink;
        let op = OpKind::MaxMul;
        let (a, b, c) = operands(op, 70, 23, 37); // ragged, 5 tile rows
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let ring = RingSink::shared();
            let mut be =
                TiledBackend::with_parallelism(parallelism).with_tracer(Tracer::to(ring.clone()));
            be.mmo(op, &a, &b, &c).unwrap();
            be.mmo(op, &a, &b, &c).unwrap();
            let events = ring.events();
            let sum = |span_name: &str, key: &str| -> u64 {
                events
                    .iter()
                    .filter(|e| e.span == span_name && e.kind == simd2_trace::EventKind::End)
                    .map(|e| e.u64(key).unwrap())
                    .sum()
            };
            let count = be.op_count();
            // Per-op (mmo spans) and per-worker (tile_panel spans)
            // totals both reproduce the OpCount merge exactly.
            for key in ["tile_mmos", "tile_loads", "tile_stores"] {
                let want = match key {
                    "tile_mmos" => count.tile_mmos,
                    "tile_loads" => count.tile_loads,
                    _ => count.tile_stores,
                };
                assert_eq!(sum(span::MMO, key), want, "{parallelism:?} mmo {key}");
                assert_eq!(
                    sum(span::TILE_PANEL, key),
                    want,
                    "{parallelism:?} tile_panel {key}"
                );
            }
            let mmo_ends = events
                .iter()
                .filter(|e| e.span == span::MMO && e.kind == simd2_trace::EventKind::End)
                .count() as u64;
            assert_eq!(mmo_ends, count.matrix_mmos);
            // Sequential schedules emit exactly one panel per mmo.
            if parallelism == Parallelism::Sequential {
                let panels = events.iter().filter(|e| e.span == span::TILE_PANEL).count();
                assert_eq!(panels, 2);
            }
        }
    }

    #[test]
    fn failed_mmo_emits_no_end_event() {
        use simd2_fault::PanicProbeUnit;
        use simd2_trace::RingSink;
        let op = OpKind::PlusMul;
        let (a, b, c) = operands(op, 70, 23, 37);
        let ring = RingSink::shared();
        let mut be = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 2))
            .with_tracer(Tracer::to(ring.clone()));
        be.set_parallelism(Parallelism::Threads(4));
        be.mmo(op, &a, &b, &c).unwrap_err();
        let events = ring.events();
        assert!(events
            .iter()
            .any(|e| e.span == span::MMO && e.kind == simd2_trace::EventKind::Begin));
        assert!(
            !events
                .iter()
                .any(|e| e.span == span::MMO && e.kind == simd2_trace::EventKind::End),
            "a panicked mmo must not report completed work"
        );
    }

    #[test]
    fn reference_backend_is_full_precision() {
        let mut be = ReferenceBackend::new();
        assert!(!be.reduced_precision());
        // 0.1 is not fp16-exact; the reference must not quantise it.
        let a = Matrix::filled(1, 1, 0.1);
        let b = Matrix::filled(1, 1, 1.0);
        let c = Matrix::zeros(1, 1);
        let d = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d[(0, 0)], 0.1);
    }

    #[test]
    fn tiled_backend_quantises() {
        let mut be = TiledBackend::new();
        assert!(be.reduced_precision());
        let a = Matrix::filled(1, 1, 0.1);
        let b = Matrix::filled(1, 1, 1.0);
        let c = Matrix::zeros(1, 1);
        let d = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d[(0, 0)], quantize_f16(0.1));
    }

    #[test]
    fn shape_errors_propagate() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(5, 4);
        let c = Matrix::zeros(4, 4);
        assert!(ReferenceBackend::new()
            .mmo(OpKind::PlusMul, &a, &b, &c)
            .is_err());
        assert!(TiledBackend::new()
            .mmo(OpKind::PlusMul, &a, &b, &c)
            .is_err());
        assert!(IsaBackend::new().mmo(OpKind::PlusMul, &a, &b, &c).is_err());
    }

    #[test]
    fn degradation_seams_pin_scalar_and_demote_to_sequential() {
        // Pinning the kernel to scalar must be honoured, observable, and
        // bit-identical (the vector tiers are already bit-identical to
        // scalar; the pin only changes which kernel executes).
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(4));
        let a = gen::random_operands_for(OpKind::PlusMul, 40, 40, 3);
        let b = gen::random_operands_for(OpKind::PlusMul, 40, 40, 4);
        let c = Matrix::zeros(40, 40);
        let before = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert!(Backend::pin_kernel_isa(&mut be, KernelIsa::Scalar));
        assert_eq!(Backend::kernel_isa(&be), KernelIsa::Scalar);
        assert_eq!(be.kernel_isa(), KernelIsa::Scalar); // inherent agrees
        assert!(be.force_sequential(), "Threads(4) -> Sequential changes");
        assert!(!be.force_sequential(), "already sequential: refused");
        assert_eq!(be.parallelism(), Parallelism::Sequential);
        let after = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(before, after);
        assert_eq!(be.fault_log_dropped(), 0, "pristine unit never drops");
        // Backends without the seams refuse them.
        let mut oracle = ReferenceBackend::new();
        assert_eq!(Backend::kernel_isa(&oracle), KernelIsa::Scalar);
        assert!(!oracle.pin_kernel_isa(KernelIsa::Scalar));
        assert!(!oracle.force_sequential());
        assert_eq!(oracle.fault_log_dropped(), 0);
    }

    #[test]
    fn backend_names_are_distinct() {
        let names = [
            ReferenceBackend::new().name(),
            TiledBackend::new().name(),
            IsaBackend::new().name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
