//! Operand representation seam (paper §6.5, Figures 13–14).
//!
//! The paper argues SIMD²'s semiring formulation pays off on *sparse*
//! inputs — 2:4 structured sparsity and CSR spGEMM past a density
//! crossover — yet sparsity must not fork the programming model: an
//! algorithm states `D = C ⊕ (A ⊗ B)` and the *representation* of each
//! operand (dense, CSR, 2:4-structured) is a lowering choice, exactly
//! like the dense tile schedule. [`OperandRepr`] is that choice, and
//! [`MatrixRef`] pairs it with a borrowed operand for
//! [`Backend::mmo_ref`](crate::Backend::mmo_ref).
//!
//! Two invariants make the seam sound:
//!
//! 1. **Representation never changes the answer.** Every backend must
//!    produce bit-identical outputs whether it honours a sparse
//!    declaration or falls back to the dense datapath — a sparse
//!    declaration is a *schedule* hint, so skipping a stored-zero term
//!    must be a bit-exact no-op under the operation's reduction. That
//!    is why a sparse declaration's `zero` sentinel is validated to be
//!    the operation's [`no_edge_f32`](simd2_semiring::OpKind::no_edge_f32)
//!    annihilator (see [`crate::validate::check_mmo_operands_ref`]).
//! 2. **Cache identity sees representation.** Plans record slot reprs
//!    into [`structural_hash`](crate::Plan::structural_hash), and input
//!    fingerprints of sparse slots hash the CSR raw parts (row
//!    pointers, column indices, stored bits) — injective on element
//!    bits, so a cache key can never alias two different inputs.

use simd2_matrix::Matrix;
use simd2_semiring::OpKind;

/// How one MMO operand is represented at execution time.
///
/// `Dense` is the default everywhere; the sparse variants carry the
/// "zero" sentinel (as exact bits, so the type stays `Eq`/`Hash`) that
/// defines which elements the compressed form stores. For a declaration
/// to validate, the sentinel must equal the operation's
/// [`no_edge_f32`](simd2_semiring::OpKind::no_edge_f32) value — the
/// annihilator whose terms a sparse kernel may skip bit-exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OperandRepr {
    /// Plain row-major dense storage.
    #[default]
    Dense,
    /// Compressed sparse rows over the given zero sentinel.
    Csr {
        /// Bit pattern of the "zero" (no-edge) sentinel.
        zero_bits: u32,
    },
    /// 2:4 structured sparsity (at most two stored values per aligned
    /// group of four along each row) over the given zero sentinel.
    Structured24 {
        /// Bit pattern of the "zero" (no-edge) sentinel.
        zero_bits: u32,
    },
}

impl OperandRepr {
    /// A CSR declaration over `zero`.
    pub fn csr(zero: f32) -> Self {
        OperandRepr::Csr {
            zero_bits: zero.to_bits(),
        }
    }

    /// A 2:4-structured declaration over `zero`.
    pub fn structured(zero: f32) -> Self {
        OperandRepr::Structured24 {
            zero_bits: zero.to_bits(),
        }
    }

    /// The CSR declaration matching `op`'s no-edge sentinel, if the
    /// operation has one (`PlusNorm` does not — every element is
    /// semantically meaningful, so it has no sparse lowering).
    pub fn csr_for(op: OpKind) -> Option<Self> {
        op.no_edge_f32().map(Self::csr)
    }

    /// The 2:4-structured declaration matching `op`'s no-edge sentinel.
    pub fn structured_for(op: OpKind) -> Option<Self> {
        op.no_edge_f32().map(Self::structured)
    }

    /// The zero sentinel of a sparse declaration (`None` for dense).
    pub fn zero(self) -> Option<f32> {
        match self {
            OperandRepr::Dense => None,
            OperandRepr::Csr { zero_bits } | OperandRepr::Structured24 { zero_bits } => {
                Some(f32::from_bits(zero_bits))
            }
        }
    }

    /// Whether this is the dense representation.
    pub fn is_dense(self) -> bool {
        matches!(self, OperandRepr::Dense)
    }

    /// Short human-readable name (`dense` / `csr` / `structured24`).
    pub fn name(self) -> &'static str {
        match self {
            OperandRepr::Dense => "dense",
            OperandRepr::Csr { .. } => "csr",
            OperandRepr::Structured24 { .. } => "structured24",
        }
    }

    /// An injective `u64` encoding, mixed into plan hashes. Dense maps
    /// to 0 so all-dense plans hash exactly as they did before the
    /// representation seam existed.
    pub fn hash_tag(self) -> u64 {
        match self {
            OperandRepr::Dense => 0,
            OperandRepr::Csr { zero_bits } => (1 << 32) | u64::from(zero_bits),
            OperandRepr::Structured24 { zero_bits } => (2 << 32) | u64::from(zero_bits),
        }
    }
}

/// A borrowed MMO operand together with its declared representation —
/// what [`Backend::mmo_ref`](crate::Backend::mmo_ref) accepts.
///
/// The matrix itself stays dense in memory (the functional model's
/// ground truth); the representation tells the backend which compressed
/// view it may execute through.
#[derive(Clone, Copy, Debug)]
pub struct MatrixRef<'a> {
    /// The operand's dense ground-truth values.
    pub matrix: &'a Matrix,
    /// The declared execution representation.
    pub repr: OperandRepr,
}

impl<'a> MatrixRef<'a> {
    /// A dense operand reference (the common case).
    pub fn dense(matrix: &'a Matrix) -> Self {
        Self {
            matrix,
            repr: OperandRepr::Dense,
        }
    }

    /// An operand reference with an explicit representation.
    pub fn new(matrix: &'a Matrix, repr: OperandRepr) -> Self {
        Self { matrix, repr }
    }
}

/// Fraction of elements that differ from `zero` (by value), in `[0, 1]`.
/// An empty matrix reports density 0.
pub fn density(m: &Matrix, zero: f32) -> f64 {
    let total = m.rows() * m.cols();
    if total == 0 {
        return 0.0;
    }
    let nnz = m.as_slice().iter().filter(|&&v| v != zero).count();
    nnz as f64 / total as f64
}

/// Whether every aligned group of four elements along each row of `m`
/// holds at most two values different from `zero` — the 2:4 structured
/// sparsity constraint (ragged tail groups are checked over the
/// elements they actually have).
pub fn is_2_4_compliant(m: &Matrix, zero: f32) -> bool {
    (0..m.rows()).all(|r| {
        (0..m.cols()).step_by(4).all(|g| {
            let end = (g + 4).min(m.cols());
            (g..end).filter(|&c| m[(r, c)] != zero).count() <= 2
        })
    })
}

/// FNV-1a fingerprint of a matrix's CSR raw parts over `zero`: shape,
/// the sentinel's bits, and per row the (column, bits) pairs of every
/// element whose *bit pattern* differs from the sentinel's.
///
/// Filtering on bits (not value) makes the parts a bijection with the
/// element bit patterns — e.g. a `-0.0` under a `+0.0` sentinel is
/// stored, not dropped — so equal fingerprints imply bit-equal
/// matrices (up to hash collision), and a replay cache keyed on this
/// fingerprint stays sound even for backends that fall back to the
/// dense datapath.
pub fn fingerprint_sparse(m: &Matrix, zero: f32) -> u64 {
    let zero_bits = zero.to_bits();
    let mut h = crate::plan::FNV_OFFSET;
    for word in [m.rows() as u64, m.cols() as u64, u64::from(zero_bits)] {
        h = crate::plan::fnv_mix(h, word);
    }
    for r in 0..m.rows() {
        let mut row_nnz = 0u64;
        let mut row_h = crate::plan::FNV_OFFSET;
        for c in 0..m.cols() {
            let bits = m[(r, c)].to_bits();
            if bits != zero_bits {
                row_nnz += 1;
                row_h = crate::plan::fnv_mix(row_h, c as u64);
                row_h = crate::plan::fnv_mix(row_h, u64::from(bits));
            }
        }
        h = crate::plan::fnv_mix(h, row_nnz);
        h = crate::plan::fnv_mix(h, row_h);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reprs_roundtrip_sentinels_and_tags() {
        assert!(OperandRepr::default().is_dense());
        assert_eq!(OperandRepr::Dense.zero(), None);
        assert_eq!(OperandRepr::Dense.hash_tag(), 0);
        let csr = OperandRepr::csr(f32::INFINITY);
        assert_eq!(csr.zero(), Some(f32::INFINITY));
        assert!(!csr.is_dense());
        let st = OperandRepr::structured(0.0);
        assert_eq!(st.zero(), Some(0.0));
        // Tags are injective across variants and sentinels.
        let tags = [
            OperandRepr::Dense.hash_tag(),
            csr.hash_tag(),
            st.hash_tag(),
            OperandRepr::csr(0.0).hash_tag(),
            OperandRepr::structured(f32::INFINITY).hash_tag(),
        ];
        let distinct: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(distinct.len(), tags.len());
        assert_eq!(csr.name(), "csr");
        assert_eq!(st.name(), "structured24");
        assert_eq!(OperandRepr::Dense.name(), "dense");
    }

    #[test]
    fn op_derived_reprs_follow_no_edge() {
        let minplus = OperandRepr::csr_for(OpKind::MinPlus).unwrap();
        assert_eq!(minplus.zero(), Some(f32::INFINITY));
        let plusmul = OperandRepr::structured_for(OpKind::PlusMul).unwrap();
        assert_eq!(plusmul.zero(), Some(0.0));
        // PlusNorm has no annihilator: no sparse lowering exists.
        assert_eq!(OperandRepr::csr_for(OpKind::PlusNorm), None);
        assert_eq!(OperandRepr::structured_for(OpKind::PlusNorm), None);
    }

    #[test]
    fn density_counts_by_value() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0, 2.0], &[0.0, 0.0, 0.0, 0.0]]);
        assert_eq!(density(&m, 0.0), 0.25);
        assert_eq!(density(&Matrix::zeros(0, 4), 0.0), 0.0);
        let inf = Matrix::from_rows(&[&[f32::INFINITY, 3.0]]);
        assert_eq!(density(&inf, f32::INFINITY), 0.5);
    }

    #[test]
    fn compliance_checks_aligned_groups_of_four() {
        // Two per group of four: compliant.
        let ok = Matrix::from_rows(&[&[1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0]]);
        assert!(is_2_4_compliant(&ok, 0.0));
        // Three in the first group: not compliant.
        let bad = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]]);
        assert!(!is_2_4_compliant(&bad, 0.0));
        // Ragged tail group (2 cols) may hold both values.
        let tail = Matrix::from_rows(&[&[0.0, 0.0, 1.0, 0.0, 5.0, 6.0]]);
        assert!(is_2_4_compliant(&tail, 0.0));
    }

    #[test]
    fn sparse_fingerprint_is_bit_exact() {
        let a = Matrix::from_rows(&[&[0.0, 1.5], &[2.5, 0.0]]);
        let b = a.clone();
        assert_eq!(fingerprint_sparse(&a, 0.0), fingerprint_sparse(&b, 0.0));
        // Flipping a stored bit moves the fingerprint.
        let mut c = a.clone();
        c.as_mut_slice()[1] = f32::from_bits(1.5f32.to_bits() ^ 1);
        assert_ne!(fingerprint_sparse(&a, 0.0), fingerprint_sparse(&c, 0.0));
        // A -0.0 under a +0.0 sentinel is value-zero but bit-distinct:
        // it must still be captured.
        let mut d = a.clone();
        d.as_mut_slice()[0] = -0.0;
        assert_ne!(fingerprint_sparse(&a, 0.0), fingerprint_sparse(&d, 0.0));
        // Different sentinels fingerprint differently even on equal bits.
        assert_ne!(
            fingerprint_sparse(&a, 0.0),
            fingerprint_sparse(&a, f32::INFINITY)
        );
    }
}
