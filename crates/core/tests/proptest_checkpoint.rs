//! Property-based validation of wave-granular checkpoint/resume against
//! uninterrupted replay.
//!
//! The contract under test: halting a resumable replay at **any** wave
//! boundary and resuming from the returned [`PlanCheckpoint`] is
//! observationally identical to one uninterrupted replay — final and
//! per-step outputs bit for bit, backend [`OpCount`](simd2::OpCount)
//! work counters exact (completed waves are never re-executed), and the
//! concatenated halted + resumed telemetry streams equal to the clean
//! run's stream event for event — for every operation, every
//! (non-square) shape, the sequential executor, and the batched
//! executor over workers {1, 2, 4, 8}.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2::{Backend, Parallelism, Plan, PlanBuilder, PlanExecutor, ReplayProgress, TiledBackend};
use simd2_matrix::Matrix;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_trace::{RingSink, Tracer};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// In-domain operand values for the given op (reliabilities in (0,1],
/// booleans in {0,1}, everything else small non-negative reals).
fn operand(op: OpKind, raw: u16) -> f32 {
    let raw = f32::from(raw % 64);
    match op {
        OpKind::OrAnd => {
            if raw >= 32.0 {
                1.0
            } else {
                0.0
            }
        }
        OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
        _ => raw * 0.25,
    }
}

fn matrix_strategy(op: OpKind, rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u16>(), rows * cols)
        .prop_map(move |vals| Matrix::from_fn(rows, cols, |r, c| operand(op, vals[r * cols + c])))
}

fn gen_operands(op: OpKind, m: usize, n: usize, k: usize, seed: u32) -> (Matrix, Matrix, Matrix) {
    let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
    let a = matrix_strategy(op, m, k)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let b = matrix_strategy(op, k, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let c = matrix_strategy(op, m, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    (a, b, c)
}

fn assert_bits_equal(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape");
    for (i, (x, y)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// Records a `len`-step chain — each step accumulates onto the previous
/// step's output, so every wave holds exactly one step — and returns
/// the eager per-step outputs alongside the plan.
fn record_chain(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix, len: usize) -> (Vec<Matrix>, Plan) {
    let mut rec_be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut rec_be);
    let mut d = rec.mmo(op, a, b, c).expect("recording step 0");
    let mut expected = vec![d.clone()];
    for i in 1..len {
        d = rec
            .mmo(op, a, b, &d)
            .unwrap_or_else(|e| panic!("recording step {i}: {e}"));
        expected.push(d.clone());
    }
    (expected, rec.finish())
}

/// Halts a resumable replay once `halt_at` steps completed, resumes it
/// from the checkpoint on the same backend/ring, and asserts the pair
/// is indistinguishable from the clean run: outputs, counters, and the
/// concatenated telemetry stream.
fn check_boundary<B: Backend>(
    plan: &Plan,
    expected: &[Matrix],
    halt_at: usize,
    exec: &PlanExecutor,
    mut make_backend: impl FnMut() -> B,
    what: &str,
) {
    let len = plan.step_count();

    let clean_ring = RingSink::shared();
    let clean_exec = exec.clone().with_tracer(Tracer::to(clean_ring.clone()));
    let mut clean_be = make_backend();
    let clean = clean_exec
        .run_resumable(plan, &mut clean_be, &mut |_: ReplayProgress| Ok(()))
        .unwrap_or_else(|h| panic!("{what}: clean run halted: {}", h.error));
    assert_bits_equal(&expected[len - 1], clean.final_output().unwrap(), what);

    // Interrupted leg: halt at the wave boundary, then resume through
    // the same executor/backend/ring so counters and telemetry span the
    // whole halted-plus-resumed lifetime.
    let ring = RingSink::shared();
    let exec = exec.clone().with_tracer(Tracer::to(ring.clone()));
    let mut be = make_backend();
    let mut halt = |p: ReplayProgress| {
        if p.completed_steps >= halt_at {
            Err(format!("halt after {halt_at} steps"))
        } else {
            Ok(())
        }
    };
    let halted = exec
        .run_resumable(plan, &mut be, &mut halt)
        .expect_err("the control must halt the replay");
    assert!(halted.error.is_cancelled(), "{what}: halt kind");
    assert_eq!(halted.error.completed_steps, halt_at, "{what}: halt point");
    let cp = &halted.checkpoint;
    assert_eq!(cp.key(), plan.cache_key(), "{what}: checkpoint key");
    assert_eq!(
        cp.completed_steps(),
        halt_at,
        "{what}: checkpoint completed"
    );
    assert_eq!(
        cp.remaining_steps(),
        len - halt_at,
        "{what}: checkpoint remaining"
    );
    assert_eq!(cp.total_steps(), len, "{what}: checkpoint total");
    assert_eq!(cp.resumes(), 0, "{what}: first halt");
    for step in 0..len {
        assert_eq!(
            cp.step_completed(step),
            step < halt_at,
            "{what}: step {step} completion"
        );
    }

    let resumed = exec
        .resume_from(
            plan,
            halted.checkpoint,
            &mut be,
            &mut |_: ReplayProgress| Ok(()),
        )
        .unwrap_or_else(|h| panic!("{what}: resume halted: {}", h.error));
    for (step, want) in expected.iter().enumerate() {
        assert_bits_equal(
            want,
            resumed.step_output(step),
            &format!("{what}: step {step}"),
        );
    }
    assert_bits_equal(
        clean.final_output().unwrap(),
        resumed.final_output().unwrap(),
        &format!("{what}: final"),
    );

    // The backend performed exactly the clean run's work — no completed
    // wave was ever re-executed.
    assert_eq!(be.op_count(), clean_be.op_count(), "{what}: op counters");

    // The halted stream plus the resume's complement reads as one
    // uninterrupted run (events carry no timestamps, so equality is
    // exact: same spans, same kinds, same fields, same order).
    assert_eq!(ring.events(), clean_ring.events(), "{what}: telemetry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpoint/resume at **every** wave boundary of a multi-wave
    /// chain is bit-identical to uninterrupted replay — outputs, op
    /// counters, and telemetry — for the sequential executor and the
    /// batched executor over workers {1, 2, 4, 8}, across all nine ops
    /// and non-square shapes.
    #[test]
    fn resume_from_every_wave_boundary_is_bit_identical_to_clean_replay(
        op in op_strategy(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..24,
        len in 2usize..5,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);
        let (expected, plan) = record_chain(op, &a, &b, &c, len);
        prop_assert_eq!(plan.step_count(), len);
        // The chain's RAW edges force one wave per step, so every step
        // boundary is a wave boundary.
        prop_assert_eq!(plan.waves().len(), len);

        for halt_at in 1..len {
            check_boundary(
                &plan,
                &expected,
                halt_at,
                &PlanExecutor::new(),
                TiledBackend::new,
                &format!("sequential, halt_at={halt_at}"),
            );
            for workers in [1usize, 2, 4, 8] {
                check_boundary(
                    &plan,
                    &expected,
                    halt_at,
                    &PlanExecutor::batched(),
                    || TiledBackend::with_parallelism(Parallelism::Threads(workers)),
                    &format!("batched workers={workers}, halt_at={halt_at}"),
                );
            }
        }
    }
}
