//! Property-based cross-validation of the parallel tile-grid schedule
//! against the sequential reference schedule.
//!
//! The contract under test is the strongest one the engine makes:
//! **bit-for-bit identity** for every operation, every (non-square)
//! shape, and every worker count — plus exact equality of the merged
//! [`OpCount`] work counters. Any divergence would mean panel
//! partitioning changed a reduction order or dropped/duplicated a tile.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2::{Backend, OpCount, Parallelism, TiledBackend};
use simd2_fault::{
    FaultInjector, FaultLogEntry, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector,
};
use simd2_matrix::Matrix;
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::simd::KernelIsa;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_trace::{span, Event, EventKind, RingSink, Tracer};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// In-domain operand values for the given op (reliabilities in (0,1],
/// booleans in {0,1}, everything else small non-negative reals).
fn operand(op: OpKind, raw: u16) -> f32 {
    let raw = f32::from(raw % 64);
    match op {
        OpKind::OrAnd => {
            if raw >= 32.0 {
                1.0
            } else {
                0.0
            }
        }
        OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
        _ => raw * 0.25,
    }
}

fn matrix_strategy(op: OpKind, rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u16>(), rows * cols)
        .prop_map(move |vals| Matrix::from_fn(rows, cols, |r, c| operand(op, vals[r * cols + c])))
}

/// Rebuilds an [`OpCount`] from a run's `mmo` span-end events.
fn mmo_totals(events: &[Event]) -> OpCount {
    let mut c = OpCount::default();
    for e in events {
        if e.span == span::MMO && e.kind == EventKind::End {
            c.matrix_mmos += 1;
            c.tile_mmos += e.u64("tile_mmos").unwrap_or(0);
            c.tile_loads += e.u64("tile_loads").unwrap_or(0);
            c.tile_stores += e.u64("tile_stores").unwrap_or(0);
        }
    }
    c
}

/// Sums the per-worker `tile_panel` span summaries (no matrix_mmos —
/// panels are fractions of one mmo).
fn panel_totals(events: &[Event]) -> OpCount {
    let mut c = OpCount::default();
    for e in events {
        if e.span == span::TILE_PANEL && e.kind == EventKind::End {
            c.tile_mmos += e.u64("tile_mmos").unwrap_or(0);
            c.tile_loads += e.u64("tile_loads").unwrap_or(0);
            c.tile_stores += e.u64("tile_stores").unwrap_or(0);
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel == sequential, bit for bit, over all nine ops ×
    /// non-square shapes × worker counts {1, 2, 4, 8}; counters exact.
    #[test]
    fn parallel_matches_sequential_bit_for_bit(
        op in op_strategy(),
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..40,
        seed in any::<u32>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
        let a = matrix_strategy(op, m, k).new_tree(&mut runner).unwrap().current();
        let b = matrix_strategy(op, k, n).new_tree(&mut runner).unwrap().current();
        let c = matrix_strategy(op, m, n).new_tree(&mut runner).unwrap().current();

        let mut seq_be = TiledBackend::new();
        let seq = seq_be.mmo(op, &a, &b, &c).unwrap();
        let seq_count = seq_be.op_count();
        prop_assert!(seq_count.tile_mmos > 0);

        for workers in [1usize, 2, 4, 8] {
            let mut par_be = TiledBackend::with_parallelism(Parallelism::Threads(workers));
            let par = par_be.mmo(op, &a, &b, &c).unwrap();
            prop_assert_eq!(par.shape(), (m, n));
            for (i, (x, y)) in seq.as_slice().iter().zip(par.as_slice()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} {}x{}x{} workers={} element {}",
                    op, m, n, k, workers, i
                );
            }
            // OpCount exactness under parallelism: per-worker counters
            // merged after the join must equal the sequential totals.
            prop_assert_eq!(par_be.op_count(), seq_count, "workers={}", workers);
        }
    }

    /// Faulty units keep the same contract: a coordinate-addressed
    /// fault plan strikes the same tiles on every schedule, so D is
    /// bit-identical, the merged fault log equals the sequential log,
    /// and the work counters stay exact — over all nine ops ×
    /// non-square shapes × worker counts {1, 2, 4, 8}.
    #[test]
    fn faulty_parallel_matches_faulty_sequential(
        op in op_strategy(),
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..40,
        seed in any::<u32>(),
        plan_seed in any::<u32>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
        let a = matrix_strategy(op, m, k).new_tree(&mut runner).unwrap().current();
        let b = matrix_strategy(op, k, n).new_tree(&mut runner).unwrap().current();
        let c = matrix_strategy(op, m, n).new_tree(&mut runner).unwrap().current();

        // Fresh backend per schedule so every run sees the identical
        // (seed, mmo_seq) fault-draw stream.
        let run = |threads| -> (Matrix, Vec<FaultLogEntry>, u64, OpCount) {
            let plan = FaultPlan::new(
                FaultPlanConfig::new(u64::from(plan_seed))
                    .with_bit_flip_ppm(120_000)
                    .with_stuck_lane_ppm(40_000)
                    .with_transient_nan_ppm(60_000),
            );
            let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(plan));
            let mut be = TiledBackend::with_unit(unit);
            be.set_parallelism(threads);
            let d = be.mmo(op, &a, &b, &c).unwrap();
            let inj = be.unit().injector();
            (d, inj.log(), inj.injected(), be.op_count())
        };
        let (d_seq, log_seq, inj_seq, count_seq) = run(Parallelism::Sequential);
        for workers in [1usize, 2, 4, 8] {
            let (d_par, log_par, inj_par, count_par) = run(Parallelism::Threads(workers));
            for (i, (x, y)) in d_seq.as_slice().iter().zip(d_par.as_slice()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} {}x{}x{} workers={} element {}",
                    op, m, n, k, workers, i
                );
            }
            // Shards merged in panel order reproduce the sequential
            // row-major log and injection count exactly.
            prop_assert_eq!(&log_seq, &log_par, "workers={}", workers);
            prop_assert_eq!(inj_seq, inj_par, "workers={}", workers);
            prop_assert_eq!(count_seq, count_par, "workers={}", workers);
        }
    }

    /// Telemetry lock-step: span-derived totals equal the backend's own
    /// [`Backend::op_count`] *exactly* — over all nine ops × non-square
    /// shapes × worker counts {1, 2, 4, 8} — and the sequential and
    /// parallel schedules emit identical counter totals (the parallel
    /// event *order* may differ; the totals may not).
    #[test]
    fn span_totals_equal_op_count_across_schedules(
        op in op_strategy(),
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..40,
        seed in any::<u32>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
        let a = matrix_strategy(op, m, k).new_tree(&mut runner).unwrap().current();
        let b = matrix_strategy(op, k, n).new_tree(&mut runner).unwrap().current();
        let c = matrix_strategy(op, m, n).new_tree(&mut runner).unwrap().current();

        let run = |par: Parallelism| -> (Vec<Event>, OpCount) {
            let ring = RingSink::shared();
            let mut be = TiledBackend::new().with_tracer(Tracer::to(ring.clone()));
            be.set_parallelism(par);
            be.mmo(op, &a, &b, &c).unwrap();
            assert_eq!(ring.dropped(), 0, "telemetry ring overflowed");
            (ring.events(), be.op_count())
        };

        let (seq_events, seq_count) = run(Parallelism::Sequential);
        let seq_mmo = mmo_totals(&seq_events);
        let seq_panels = panel_totals(&seq_events);
        prop_assert_eq!(seq_mmo, seq_count, "sequential mmo spans vs op_count");
        prop_assert_eq!(
            (seq_panels.tile_mmos, seq_panels.tile_loads, seq_panels.tile_stores),
            (seq_count.tile_mmos, seq_count.tile_loads, seq_count.tile_stores),
            "sequential panel spans vs op_count"
        );

        for workers in [1usize, 2, 4, 8] {
            let (par_events, par_count) = run(Parallelism::Threads(workers));
            prop_assert_eq!(par_count, seq_count, "workers={}", workers);
            let par_mmo = mmo_totals(&par_events);
            prop_assert_eq!(par_mmo, par_count, "mmo spans, workers={}", workers);
            let par_panels = panel_totals(&par_events);
            prop_assert_eq!(
                (par_panels.tile_mmos, par_panels.tile_loads, par_panels.tile_stores),
                (par_count.tile_mmos, par_count.tile_loads, par_count.tile_stores),
                "panel spans, workers={}", workers
            );
        }
    }

    /// SIMD == scalar end to end: a backend whose unit is pinned to the
    /// scalar kernel and one on the auto-selected vector tier produce
    /// bit-identical whole-matrix results — over all nine ops ×
    /// non-square shapes × fp16/fp32 operand precisions × worker counts
    /// {1, 2, 4, 8}. On hosts without a vector tier both units run
    /// scalar and the property degenerates to a self-check.
    #[test]
    fn vector_kernel_matches_scalar_backend_bit_for_bit(
        op in op_strategy(),
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..40,
        seed in any::<u32>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
        let a = matrix_strategy(op, m, k).new_tree(&mut runner).unwrap().current();
        let b = matrix_strategy(op, k, n).new_tree(&mut runner).unwrap().current();
        let c = matrix_strategy(op, m, n).new_tree(&mut runner).unwrap().current();

        for precision in [PrecisionMode::Fp16Input, PrecisionMode::Fp32Input] {
            let scalar_unit =
                Simd2Unit::with_precision(precision).with_kernel_isa(KernelIsa::Scalar);
            let mut scalar_be = TiledBackend::with_unit(scalar_unit);
            let want = scalar_be.mmo(op, &a, &b, &c).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let mut be = TiledBackend::with_unit(Simd2Unit::with_precision(precision));
                be.set_parallelism(Parallelism::Threads(workers));
                let got = be.mmo(op, &a, &b, &c).unwrap();
                prop_assert_eq!(be.kernel_isa(), Simd2Unit::default().kernel_isa());
                for (i, (x, y)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{} {}x{}x{} {:?} workers={} element {}",
                        op, m, n, k, precision, workers, i
                    );
                }
            }
        }
    }

    /// Fault campaigns are kernel-ISA-independent: the same seeded
    /// fault plan run on a scalar-pinned unit and on the auto-selected
    /// vector unit strikes the same sites, logs the same entries and
    /// produces bit-identical (faulted) outputs — injection addresses
    /// output *coordinates* after the datapath has produced its bits,
    /// and the datapath bits themselves are identical across ISAs.
    #[test]
    fn fault_campaign_is_identical_across_kernel_isas(
        op in op_strategy(),
        m in 1usize..50,
        n in 1usize..50,
        k in 1usize..34,
        seed in any::<u32>(),
        plan_seed in any::<u32>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
        let a = matrix_strategy(op, m, k).new_tree(&mut runner).unwrap().current();
        let b = matrix_strategy(op, k, n).new_tree(&mut runner).unwrap().current();
        let c = matrix_strategy(op, m, n).new_tree(&mut runner).unwrap().current();

        let run = |isa: Option<KernelIsa>| -> (Matrix, Vec<FaultLogEntry>, u64, OpCount) {
            let plan = FaultPlan::new(
                FaultPlanConfig::new(u64::from(plan_seed))
                    .with_bit_flip_ppm(120_000)
                    .with_stuck_lane_ppm(40_000)
                    .with_transient_nan_ppm(60_000),
            );
            let mut unit = Simd2Unit::new();
            if let Some(isa) = isa {
                unit = unit.with_kernel_isa(isa);
            }
            let mut be =
                TiledBackend::with_unit(FaultySimd2Unit::new(unit, PlannedInjector::new(plan)));
            let d = be.mmo(op, &a, &b, &c).unwrap();
            let inj = be.unit().injector();
            (d, inj.log(), inj.injected(), be.op_count())
        };

        let (d_scalar, log_scalar, inj_scalar, count_scalar) = run(Some(KernelIsa::Scalar));
        let (d_simd, log_simd, inj_simd, count_simd) = run(None);
        for (i, (x, y)) in d_scalar.as_slice().iter().zip(d_simd.as_slice()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{} {}x{}x{} element {}", op, m, n, k, i
            );
        }
        prop_assert_eq!(&log_scalar, &log_simd);
        prop_assert_eq!(inj_scalar, inj_simd);
        prop_assert_eq!(count_scalar, count_simd);
    }

    /// Repeated parallel runs on one backend keep accumulating exact
    /// counters (merge-on-join never double-counts or loses work).
    #[test]
    fn counters_accumulate_exactly_across_calls(
        m in 1usize..50,
        n in 1usize..50,
        k in 1usize..34,
        calls in 1usize..4,
    ) {
        let op = OpKind::MinPlus;
        let a = Matrix::from_fn(m, k, |r, c| ((r + c) % 7) as f32);
        let b = Matrix::from_fn(k, n, |r, c| ((r * c) % 5) as f32);
        let c = Matrix::filled(m, n, f32::INFINITY);
        let mut one = TiledBackend::with_parallelism(Parallelism::Threads(4));
        one.mmo(op, &a, &b, &c).unwrap();
        let per_call = one.op_count();
        let mut many = TiledBackend::with_parallelism(Parallelism::Threads(4));
        for _ in 0..calls {
            many.mmo(op, &a, &b, &c).unwrap();
        }
        let want = OpCount {
            matrix_mmos: per_call.matrix_mmos * calls as u64,
            tile_mmos: per_call.tile_mmos * calls as u64,
            tile_loads: per_call.tile_loads * calls as u64,
            tile_stores: per_call.tile_stores * calls as u64,
        };
        prop_assert_eq!(many.op_count(), want);
    }
}
