//! Adversarial pass unit tests: hand-built minimal plans that each
//! target one way a pass could be *plausibly but incorrectly* eager.
//!
//! * CSE must not merge steps whose inputs collide only after fp16
//!   quantization — even though their recorded outputs are
//!   bit-identical on the recording backend, the steps are not
//!   equivalent on every backend class.
//! * Dead-step elimination must keep steps that checkpoint consumers
//!   can still reach: the final-output policy is only for callers whose
//!   contract is the final output, explicit [`RootPolicy::Steps`] and
//!   the default leaf policy retain intermediates, and a checkpoint
//!   taken against the unoptimized plan is *rejected* (never silently
//!   misapplied) by a resume against the optimized plan.
//! * The wave scheduler must never move a step across a RAW edge: it
//!   may only permute steps *within* a wave, so every dependency keeps
//!   a strictly smaller step index and the wave partition is unchanged.

use simd2::backend::TiledBackend;
use simd2::{
    Backend, DsePass, PassPipeline, PlanBuilder, PlanExecutor, ReplayHalt, RootPolicy,
    WaveSchedulerPass,
};
use simd2_matrix::Matrix;
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::OpKind;

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Two inputs that differ in f32 bits but quantize to the same fp16
/// value, so the recording backend produces bit-identical outputs for
/// both steps. CSE must still treat the steps as distinct — merging
/// them would bake the fp16 collision into the plan structure and
/// change fp32 replays.
#[test]
fn cse_never_merges_on_post_quantization_collisions() {
    let op = OpKind::MinPlus;
    let a1 = Matrix::filled(24, 24, 0.1);
    let a2 = Matrix::filled(24, 24, quantize_f16(0.1));
    assert_ne!(
        bits(&a1),
        bits(&a2),
        "the trap needs inputs that differ pre-quantization"
    );
    assert_eq!(quantize_f16(0.1), quantize_f16(quantize_f16(0.1)));
    let b = Matrix::filled(24, 24, 1.0);
    let c = Matrix::filled(24, 24, f32::INFINITY);

    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let d1 = rec.mmo(op, &a1, &b, &c).unwrap();
    let d2 = rec.mmo(op, &a2, &b, &c).unwrap();
    // Sanity: the collision is real — the recorded outputs match bit
    // for bit, so a value-based CSE would be tempted.
    assert_eq!(bits(&d1), bits(&d2));
    let plan = rec.finish();

    let optimized = PassPipeline::standard().run(plan);
    assert_eq!(
        optimized.report().steps_merged,
        0,
        "inputs that collide only after quantization must not merge"
    );
    assert_eq!(optimized.plan().step_count(), 2);

    // Positive control: recording the *same* input twice does merge —
    // the trap above failed for the right reason.
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    rec.mmo(op, &a1, &b, &c).unwrap();
    rec.mmo(op, &a1, &b, &c).unwrap();
    let control = PassPipeline::standard().run(rec.finish());
    assert_eq!(control.report().steps_merged, 1);
}

/// A three-step plan whose middle step feeds nothing: step 0 feeds
/// step 2, step 1 is independent work whose output only a checkpoint
/// consumer would read.
fn plan_with_intermediate() -> (simd2::Plan, Vec<Matrix>) {
    let a = Matrix::filled(20, 20, 2.0);
    let b = Matrix::filled(20, 20, 3.0);
    let c = Matrix::filled(20, 20, f32::INFINITY);
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let d0 = rec.mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
    let d1 = rec.mmo(OpKind::MaxPlus, &a, &b, &c).unwrap();
    let d2 = rec.mmo(OpKind::MinPlus, &a, &b, &d0).unwrap();
    (rec.finish(), vec![d0, d1, d2])
}

#[test]
fn dse_policies_control_intermediate_retention() {
    let (plan, outputs) = plan_with_intermediate();

    // Final-output policy: step 1 is dead and eliminated, steps 0 and 2
    // survive, and the final output is still exact.
    let aggressive = PassPipeline::serving().run(plan.clone());
    assert_eq!(aggressive.report().steps_eliminated, 1);
    assert_eq!(aggressive.step_target(1), None);
    assert!(aggressive.step_target(0).is_some());
    assert!(aggressive.step_target(2).is_some());
    let mut be = TiledBackend::new();
    let replay = PlanExecutor::new()
        .run_optimized(&aggressive, &mut be)
        .unwrap();
    assert_eq!(
        bits(aggressive.final_output(&replay).unwrap()),
        bits(&outputs[2])
    );

    // The default leaf policy keeps step 1 — its output is a visible
    // leaf of the plan.
    let leaves = PassPipeline::standard().run(plan.clone());
    assert_eq!(leaves.report().steps_eliminated, 0);
    let step1 = leaves.step_target(1).expect("leaf step retained");
    let mut be = TiledBackend::new();
    let replay = PlanExecutor::new().run_optimized(&leaves, &mut be).unwrap();
    assert_eq!(bits(replay.step_output(step1)), bits(&outputs[1]));

    // Explicit roots: a checkpoint consumer that needs step 1 pins it,
    // and everything not reachable from the pinned roots goes away.
    let pinned = PassPipeline::new(vec![Box::new(DsePass::new(RootPolicy::Steps(vec![1])))])
        .run(plan.clone());
    assert!(pinned.step_target(1).is_some());
    assert_eq!(pinned.report().steps_eliminated, 2);
}

/// Optimization changes the plan's structural identity, so a checkpoint
/// taken against the unoptimized plan must be *rejected* by a resume
/// against the optimized plan — a silent remap would replay the wrong
/// steps against the wrong slots.
#[test]
fn stale_checkpoints_are_rejected_by_optimized_plans() {
    let (plan, _) = plan_with_intermediate();
    let optimized = PassPipeline::serving().run(plan.clone());
    assert_ne!(
        plan.cache_key().structural,
        optimized.cache_key().structural,
        "the optimized plan must have its own structural identity"
    );

    // Halt an unoptimized replay after its first wave.
    let mut be = TiledBackend::new();
    let halted = PlanExecutor::new()
        .run_resumable(&plan, &mut be, &mut |p: simd2::ReplayProgress| {
            if p.completed_steps >= 2 {
                Err("halt".to_owned())
            } else {
                Ok(())
            }
        })
        .expect_err("control halts the replay");

    // Resuming that checkpoint through the optimized plan is refused.
    let err = PlanExecutor::new()
        .resume_from(
            optimized.plan(),
            halted.checkpoint,
            &mut be,
            &mut |_: simd2::ReplayProgress| Ok(()),
        )
        .expect_err("stale checkpoint must be rejected");
    assert!(
        matches!(err.error.halt, ReplayHalt::Checkpoint { .. }),
        "got {:?}",
        err.error.halt
    );
}

/// Wave 0 holds a cheap and an expensive independent step; wave 1 holds
/// a step with a RAW edge on the cheap one. The scheduler must hoist
/// the expensive step to the front of wave 0 but can never pull the
/// dependent step ahead of its producer, however the costs tempt it.
#[test]
fn wave_scheduler_reorders_within_but_never_across_waves() {
    let a = Matrix::filled(20, 20, 1.0);
    let b = Matrix::filled(20, 20, 2.0);
    let c = Matrix::filled(20, 20, 0.0);
    let cheap = OpKind::PlusMul; // lowest predicted per-element cost
    let dear = OpKind::MinMax; // highest (shared-port hazard)
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let d0 = rec.mmo(cheap, &a, &b, &c).unwrap(); // wave 0, cheap
    rec.mmo(dear, &a, &b, &c).unwrap(); // wave 0, expensive
    rec.mmo(cheap, &a, &b, &d0).unwrap(); // wave 1, RAW on step 0
    let plan = rec.finish();
    let waves_before: Vec<usize> = plan.waves().iter().map(Vec::len).collect();

    let optimized = PassPipeline::new(vec![Box::new(WaveSchedulerPass)]).run(plan);
    assert_eq!(optimized.report().steps_reordered, 2);
    // LPT within wave 0: the expensive step now leads.
    assert_eq!(optimized.step_target(0), Some(1));
    assert_eq!(optimized.step_target(1), Some(0));
    // The dependent step never crosses the wave boundary.
    assert_eq!(optimized.step_target(2), Some(2));

    let opt = optimized.plan();
    // No RAW edge points forward: every dependency of every step has a
    // strictly smaller index.
    for (step, deps) in opt.dependencies().iter().enumerate() {
        for &dep in deps {
            assert!(dep < step, "step {step} depends on later step {dep}");
        }
    }
    // The wave *partition* is untouched — only order within waves.
    let waves_after: Vec<usize> = opt.waves().iter().map(Vec::len).collect();
    assert_eq!(waves_after, waves_before);
}
