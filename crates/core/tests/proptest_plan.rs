//! Property-based validation of the plan IR lowering pipeline against
//! eager [`Backend::mmo`] execution.
//!
//! The contract under test: recording through [`PlanBuilder`] is
//! observationally identical to eager execution, and replaying the
//! recorded [`Plan`] — sequentially or batched over any worker count —
//! reproduces the eager result **bit for bit** with exact [`OpCount`]
//! work counters, for every operation, every (non-square) shape, and
//! both the fp16 tiled and fp32 reference lowerings.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2::{
    Backend, Parallelism, Plan, PlanBuilder, PlanExecutor, ReferenceBackend, TiledBackend,
};
use simd2_matrix::Matrix;
use simd2_semiring::{OpKind, ALL_OPS};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// In-domain operand values for the given op (reliabilities in (0,1],
/// booleans in {0,1}, everything else small non-negative reals).
fn operand(op: OpKind, raw: u16) -> f32 {
    let raw = f32::from(raw % 64);
    match op {
        OpKind::OrAnd => {
            if raw >= 32.0 {
                1.0
            } else {
                0.0
            }
        }
        OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
        _ => raw * 0.25,
    }
}

fn matrix_strategy(op: OpKind, rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u16>(), rows * cols)
        .prop_map(move |vals| Matrix::from_fn(rows, cols, |r, c| operand(op, vals[r * cols + c])))
}

fn gen_operands(op: OpKind, m: usize, n: usize, k: usize, seed: u32) -> (Matrix, Matrix, Matrix) {
    let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
    let a = matrix_strategy(op, m, k)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let b = matrix_strategy(op, k, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let c = matrix_strategy(op, m, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    (a, b, c)
}

fn assert_bits_equal(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape");
    for (i, (x, y)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// Records one `op` mmo over `backend`'s kind and returns the recording
/// backend's observations alongside the plan.
fn record_one<B: Backend>(
    backend: &mut B,
    op: OpKind,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> (Matrix, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let d = rec.mmo(op, a, b, c).expect("recording mmo");
    (d, rec.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// fp16 tiled lowering: record == eager, sequential replay == eager,
    /// batched replay over workers {1, 2, 4, 8} == eager — bit for bit,
    /// counters exact — over all nine ops × non-square shapes.
    #[test]
    fn tiled_replay_is_bit_identical_to_eager_mmo(
        op in op_strategy(),
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..32,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);

        let mut eager_be = TiledBackend::new();
        let eager = eager_be.mmo(op, &a, &b, &c).unwrap();
        let eager_count = eager_be.op_count();

        let mut rec_be = TiledBackend::new();
        let (recorded, plan) = record_one(&mut rec_be, op, &a, &b, &c);
        assert_bits_equal(&eager, &recorded, "recording");
        prop_assert_eq!(rec_be.op_count(), eager_count, "recording counters");
        prop_assert_eq!(plan.step_count(), 1);

        let mut seq_be = TiledBackend::new();
        let seq = PlanExecutor::new().run(&plan, &mut seq_be).unwrap();
        assert_bits_equal(&eager, seq.final_output().unwrap(), "sequential replay");
        prop_assert_eq!(seq_be.op_count(), eager_count, "sequential counters");

        for workers in [1usize, 2, 4, 8] {
            let mut be = TiledBackend::with_parallelism(Parallelism::Threads(workers));
            let bat = PlanExecutor::batched().run(&plan, &mut be).unwrap();
            assert_bits_equal(
                &eager,
                bat.final_output().unwrap(),
                &format!("batched replay, workers={workers}"),
            );
            prop_assert_eq!(be.op_count(), eager_count, "batched counters, workers={}", workers);
        }
    }

    /// fp32 reference lowering keeps the same record/replay contract
    /// (sequential and batched executors over the default `mmo_batch`).
    #[test]
    fn reference_replay_is_bit_identical_to_eager_mmo(
        op in op_strategy(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..24,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);

        let mut eager_be = ReferenceBackend::new();
        let eager = eager_be.mmo(op, &a, &b, &c).unwrap();
        let eager_count = eager_be.op_count();

        let mut rec_be = ReferenceBackend::new();
        let (recorded, plan) = record_one(&mut rec_be, op, &a, &b, &c);
        assert_bits_equal(&eager, &recorded, "recording");

        let mut seq_be = ReferenceBackend::new();
        let seq = PlanExecutor::new().run(&plan, &mut seq_be).unwrap();
        assert_bits_equal(&eager, seq.final_output().unwrap(), "sequential replay");
        prop_assert_eq!(seq_be.op_count(), eager_count, "sequential counters");

        let mut bat_be = ReferenceBackend::new();
        let bat = PlanExecutor::batched().run(&plan, &mut bat_be).unwrap();
        assert_bits_equal(&eager, bat.final_output().unwrap(), "batched replay");
        prop_assert_eq!(bat_be.op_count(), eager_count, "batched counters");
    }

    /// A two-step chain (the second step accumulates onto the first's
    /// output) records an exact RAW dependency — two waves — and both
    /// executors replay each step bit-identically.
    #[test]
    fn chained_steps_replay_with_exact_dependencies(
        op in op_strategy(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..24,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);

        let mut rec_be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut rec_be);
        let d1 = rec.mmo(op, &a, &b, &c).unwrap();
        let d2 = rec.mmo(op, &a, &b, &d1).unwrap();
        let plan = rec.finish();
        prop_assert_eq!(plan.step_count(), 2);
        // The RAW edge d1 → step 1 forces two scheduling waves.
        prop_assert_eq!(plan.waves(), vec![vec![0], vec![1]]);

        let mut seq_be = TiledBackend::new();
        let seq = PlanExecutor::new().run(&plan, &mut seq_be).unwrap();
        assert_bits_equal(&d1, seq.step_output(0), "step 0");
        assert_bits_equal(&d2, seq.step_output(1), "step 1");
        assert_bits_equal(&d2, seq.final_output().unwrap(), "final");

        let mut bat_be = TiledBackend::with_parallelism(Parallelism::Threads(4));
        let bat = PlanExecutor::batched().run(&plan, &mut bat_be).unwrap();
        assert_bits_equal(&d1, bat.step_output(0), "batched step 0");
        assert_bits_equal(&d2, bat.step_output(1), "batched step 1");
        prop_assert_eq!(seq_be.op_count(), bat_be.op_count(), "chain counters");
    }
}
