//! Property-based pass-equivalence layer: every optimizing pass, and
//! the full standard pipeline, must preserve replay *bit*-identity
//! against the unoptimized plan.
//!
//! The contract under test, for all nine ops × non-square shapes ×
//! fp16 (tiled) and fp32 (reference) recordings × the sequential
//! executor and the batched executor over workers {1, 2, 4, 8}:
//!
//! * every original step the optimizer's step map still reaches
//!   replays to its exact recorded bits, read back through the
//!   [`OptimizedPlan`] remap — including steps CSE merged away;
//! * the replaying backend's [`OpCount`](simd2::OpCount) equals the
//!   optimized plan's [`predicted_op_count`](simd2::Plan::predicted_op_count)
//!   (the optimizer's savings are real, not double-counted);
//! * telemetry: when a pipeline reports no change the optimized
//!   replay's event stream equals the unoptimized replay's event for
//!   event, and the `prepare_chain` slab hints issued by
//!   [`run_optimized`](simd2::PlanExecutor::run_optimized) never
//!   perturb the stream of the plain replay of the same plan;
//! * checkpoint/resume through an *optimized* plan at every wave
//!   boundary is bit-identical to its uninterrupted replay — outputs,
//!   counters, telemetry — so optimization composes with the PR 8
//!   resilience layer.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2::backend::ReferenceBackend;
use simd2::{
    Backend, CsePass, DsePass, FusionPass, OptimizedPlan, Parallelism, PassPipeline, Plan,
    PlanBuilder, PlanExecutor, PlanPass, ReplayProgress, RootPolicy, TiledBackend,
    WaveSchedulerPass,
};
use simd2_matrix::Matrix;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_trace::{RingSink, Tracer};

/// In-domain operand values for the given op (reliabilities in (0,1],
/// booleans in {0,1}, everything else small non-negative reals).
fn operand(op: OpKind, raw: u16) -> f32 {
    let raw = f32::from(raw % 64);
    match op {
        OpKind::OrAnd => {
            if raw >= 32.0 {
                1.0
            } else {
                0.0
            }
        }
        OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
        _ => raw * 0.25,
    }
}

fn matrix_strategy(op: OpKind, rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u16>(), rows * cols)
        .prop_map(move |vals| Matrix::from_fn(rows, cols, |r, c| operand(op, vals[r * cols + c])))
}

fn gen_operands(op: OpKind, m: usize, n: usize, k: usize, seed: u32) -> (Matrix, Matrix, Matrix) {
    let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
    let a = matrix_strategy(op, m, k)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let b = matrix_strategy(op, k, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let c = matrix_strategy(op, m, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    (a, b, c)
}

fn assert_bits_equal(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape");
    for (i, (x, y)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// Records a workload that gives every pass something to chew on:
/// two interleaved accumulation chains under different ops (each wave
/// holds two independent steps of different predicted cost, so the
/// scheduler can reorder), with the first chain's root recorded twice
/// (a duplicate subexpression for CSE) and same-shape RAW chains for
/// fusion. Returns the eager per-step outputs in record order.
fn record_workload<B: Backend>(
    backend: &mut B,
    (op1, op2): (OpKind, OpKind),
    (a, b, c): (&Matrix, &Matrix, &Matrix),
    len: usize,
) -> (Vec<Matrix>, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let mut expected = Vec::new();
    let d0 = rec.mmo(op1, a, b, c).expect("chain-1 root");
    expected.push(d0.clone());
    let e0 = rec.mmo(op2, a, b, c).expect("chain-2 root");
    expected.push(e0.clone());
    let mut d = rec.mmo(op1, a, b, c).expect("duplicate of chain-1 root");
    expected.push(d.clone());
    let mut e = e0;
    for i in 1..len {
        d = rec
            .mmo(op1, a, b, &d)
            .unwrap_or_else(|err| panic!("chain-1 step {i}: {err}"));
        expected.push(d.clone());
        e = rec
            .mmo(op2, a, b, &e)
            .unwrap_or_else(|err| panic!("chain-2 step {i}: {err}"));
        expected.push(e.clone());
    }
    (expected, rec.finish())
}

/// Replays `optimized` on a fresh backend and asserts the core
/// equivalence contract against the eager record-order outputs:
/// per-step bits through the remap, final-output bits, and (optionally)
/// the exact [`OpCount`](simd2::OpCount) the optimized plan predicts.
fn check_replay<B: Backend>(
    optimized: &OptimizedPlan,
    expected: &[Matrix],
    exec: &PlanExecutor,
    mut make_backend: impl FnMut() -> B,
    check_full_count: bool,
    what: &str,
) {
    let mut be = make_backend();
    let replay = exec
        .run_optimized(optimized, &mut be)
        .unwrap_or_else(|e| panic!("{what}: optimized replay: {e}"));
    for (step, want) in expected.iter().enumerate() {
        let got = optimized
            .step_output(&replay, step)
            .unwrap_or_else(|| panic!("{what}: original step {step} unreachable"));
        assert_bits_equal(want, got, &format!("{what}: step {step}"));
    }
    assert_bits_equal(
        expected.last().unwrap(),
        optimized.final_output(&replay).unwrap(),
        &format!("{what}: final"),
    );
    let predicted = optimized.plan().predicted_op_count();
    if check_full_count {
        assert_eq!(be.op_count(), predicted, "{what}: op counters");
    } else {
        assert_eq!(
            be.op_count().matrix_mmos,
            predicted.matrix_mmos,
            "{what}: matrix mmos"
        );
    }
}

/// The five pipelines under test: each pass alone, then the standard
/// composition.
fn pipelines() -> Vec<(&'static str, PassPipeline)> {
    fn single(pass: Box<dyn PlanPass>) -> PassPipeline {
        PassPipeline::new(vec![pass])
    }
    vec![
        ("cse", single(Box::new(CsePass))),
        ("dse", single(Box::new(DsePass::new(RootPolicy::Leaves)))),
        ("fusion", single(Box::new(FusionPass))),
        ("sched", single(Box::new(WaveSchedulerPass))),
        ("standard", PassPipeline::standard()),
    ]
}

/// Halts a resumable replay of the optimized plan once `halt_at` steps
/// completed, resumes from the checkpoint, and asserts the pair is
/// indistinguishable from the clean optimized replay: outputs,
/// counters, and the concatenated telemetry stream.
fn check_optimized_boundary(
    optimized: &OptimizedPlan,
    expected: &[Matrix],
    halt_at: usize,
    exec: &PlanExecutor,
    mut make_backend: impl FnMut() -> TiledBackend,
    what: &str,
) {
    let plan = optimized.plan();
    let clean_ring = RingSink::shared();
    let clean_exec = exec.clone().with_tracer(Tracer::to(clean_ring.clone()));
    let mut clean_be = make_backend();
    let clean = clean_exec
        .run_resumable(plan, &mut clean_be, &mut |_: ReplayProgress| Ok(()))
        .unwrap_or_else(|h| panic!("{what}: clean run halted: {}", h.error));
    for (step, want) in expected.iter().enumerate() {
        if let Some(got) = optimized.step_output(&clean, step) {
            assert_bits_equal(want, got, &format!("{what}: clean step {step}"));
        }
    }

    let ring = RingSink::shared();
    let exec = exec.clone().with_tracer(Tracer::to(ring.clone()));
    let mut be = make_backend();
    let mut halt = |p: ReplayProgress| {
        if p.completed_steps >= halt_at {
            Err(format!("halt after {halt_at} steps"))
        } else {
            Ok(())
        }
    };
    let halted = exec
        .run_resumable(plan, &mut be, &mut halt)
        .expect_err("the control must halt the replay");
    assert_eq!(
        halted.checkpoint.key(),
        optimized.cache_key(),
        "{what}: checkpoint keys the optimized plan"
    );
    let resumed = exec
        .resume_from(
            plan,
            halted.checkpoint,
            &mut be,
            &mut |_: ReplayProgress| Ok(()),
        )
        .unwrap_or_else(|h| panic!("{what}: resume halted: {}", h.error));
    for step in 0..plan.step_count() {
        assert_bits_equal(
            clean.step_output(step),
            resumed.step_output(step),
            &format!("{what}: resumed step {step}"),
        );
    }
    assert_eq!(be.op_count(), clean_be.op_count(), "{what}: op counters");
    assert_eq!(ring.events(), clean_ring.events(), "{what}: telemetry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every pass alone and the standard pipeline preserve replay
    /// bit-identity — outputs through the remap, exact op counters —
    /// on the fp16 tiled backend (sequential + batched over workers
    /// {1, 2, 4, 8}) and the fp32 reference backend, across all nine
    /// ops and non-square shapes.
    #[test]
    fn every_pass_preserves_replay_bit_identity(
        op_idx in 0..ALL_OPS.len(),
        op_off in 1..ALL_OPS.len(),
        m in 1usize..28,
        n in 1usize..28,
        k in 1usize..20,
        len in 2usize..4,
        seed in any::<u32>(),
    ) {
        let ops = (ALL_OPS[op_idx], ALL_OPS[(op_idx + op_off) % ALL_OPS.len()]);
        let (a, b, c) = gen_operands(ops.0, m, n, k, seed);

        // fp16 leg: record on the tiled backend, replay optimized plans
        // on the same bit-identity class.
        let (expected, plan) = record_workload(
            &mut TiledBackend::new(), ops, (&a, &b, &c), len,
        );
        for (name, pipeline) in pipelines() {
            let optimized = pipeline.run(plan.clone());
            if name == "cse" || name == "standard" {
                // The duplicated root must actually merge.
                prop_assert!(optimized.report().steps_merged >= 1, "{}", name);
            }
            check_replay(
                &optimized,
                &expected,
                &PlanExecutor::new(),
                TiledBackend::new,
                true,
                &format!("fp16 {name} sequential"),
            );
            for workers in [1usize, 2, 4, 8] {
                check_replay(
                    &optimized,
                    &expected,
                    &PlanExecutor::batched(),
                    || TiledBackend::with_parallelism(Parallelism::Threads(workers)),
                    true,
                    &format!("fp16 {name} batched workers={workers}"),
                );
            }

            // Unchanged pipelines must be telemetry-invisible: the
            // optimized replay's event stream equals the unoptimized
            // replay's event for event.
            if !optimized.report().changed() {
                let base_ring = RingSink::shared();
                PlanExecutor::new()
                    .with_tracer(Tracer::to(base_ring.clone()))
                    .run(&plan, &mut TiledBackend::new())
                    .expect("unoptimized replay");
                let opt_ring = RingSink::shared();
                PlanExecutor::new()
                    .with_tracer(Tracer::to(opt_ring.clone()))
                    .run_optimized(&optimized, &mut TiledBackend::new())
                    .expect("optimized replay");
                prop_assert_eq!(opt_ring.events(), base_ring.events(), "{} telemetry", name);
            }
        }

        // The slab hints of run_optimized never perturb telemetry:
        // replaying the optimized plan with and without hints produces
        // identical event streams (and identical bits, checked above).
        let optimized = PassPipeline::standard().run(plan.clone());
        let hinted_ring = RingSink::shared();
        PlanExecutor::new()
            .with_tracer(Tracer::to(hinted_ring.clone()))
            .run_optimized(&optimized, &mut TiledBackend::new())
            .expect("hinted replay");
        let plain_ring = RingSink::shared();
        PlanExecutor::new()
            .with_tracer(Tracer::to(plain_ring.clone()))
            .run(optimized.plan(), &mut TiledBackend::new())
            .expect("plain replay");
        prop_assert_eq!(hinted_ring.events(), plain_ring.events());

        // fp32 leg: record on the reference backend, replay there too.
        let (expected32, plan32) = record_workload(
            &mut ReferenceBackend::new(), ops, (&a, &b, &c), len,
        );
        for (name, pipeline) in pipelines() {
            let optimized = pipeline.run(plan32.clone());
            check_replay(
                &optimized,
                &expected32,
                &PlanExecutor::new(),
                ReferenceBackend::new,
                false,
                &format!("fp32 {name} sequential"),
            );
            check_replay(
                &optimized,
                &expected32,
                &PlanExecutor::batched(),
                ReferenceBackend::new,
                false,
                &format!("fp32 {name} batched"),
            );
        }
    }

    /// Checkpoint/resume *through an optimized plan* at every wave
    /// boundary is bit-identical to the uninterrupted optimized replay
    /// — outputs, op counters, telemetry — sequential and batched over
    /// workers {1, 2, 4, 8}.
    #[test]
    fn optimized_plans_checkpoint_and_resume_at_every_wave_boundary(
        op_idx in 0..ALL_OPS.len(),
        op_off in 1..ALL_OPS.len(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..16,
        len in 2usize..4,
        seed in any::<u32>(),
    ) {
        let ops = (ALL_OPS[op_idx], ALL_OPS[(op_idx + op_off) % ALL_OPS.len()]);
        let (a, b, c) = gen_operands(ops.0, m, n, k, seed);
        let (expected, plan) = record_workload(
            &mut TiledBackend::new(), ops, (&a, &b, &c), len,
        );
        let optimized = PassPipeline::standard().run(plan);
        let waves = optimized.plan().waves();
        // Halt after each wave prefix: every wave boundary is exercised.
        let mut completed = 0usize;
        for wave in &waves[..waves.len() - 1] {
            completed += wave.len();
            check_optimized_boundary(
                &optimized,
                &expected,
                completed,
                &PlanExecutor::new(),
                TiledBackend::new,
                &format!("sequential, halt_at={completed}"),
            );
            for workers in [1usize, 2, 4, 8] {
                check_optimized_boundary(
                    &optimized,
                    &expected,
                    completed,
                    &PlanExecutor::batched(),
                    || TiledBackend::with_parallelism(Parallelism::Threads(workers)),
                    &format!("batched workers={workers}, halt_at={completed}"),
                );
            }
        }
    }
}
