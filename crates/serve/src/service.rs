//! The plan service: admission → per-tenant queues → weighted
//! round-robin scheduling → resilient execution → terminal outcomes.
//!
//! # Lifecycle
//!
//! [`PlanService::submit`] validates the payload (expanding registry
//! apps to their recorded plans), applies the service-wide backpressure
//! gate and the tenant's [`TenantQuota`], and either enqueues the job
//! or returns an explicit [`Rejected`]. [`PlanService::run_until_idle`]
//! drains the per-tenant FIFO queues in weighted round-robin order;
//! each job replays through the shared [`ResilientBackend`] under its
//! [`Deadline`] (a step-boundary [`ReplayControl`](simd2::ReplayControl)
//! budget check) and lands exactly one [`JobOutcome`].
//!
//! # Isolation
//!
//! Tenants share one backend but nothing else. A worker panic inside
//! tenant A's job is contained by the backend's panic isolation and
//! recovered sequentially; a poisoned input fails *that job* with
//! [`JobStatus::Failed`] after the recovery policy exhausts; neither
//! corrupts, delays past deadline bounds, nor aborts tenant B's jobs.
//! The `serve_soak` binary proves this under seeded chaos sweeps.

use std::collections::HashMap;
use std::collections::VecDeque;

use simd2::solve::ClosureAlgorithm;
use simd2::{
    Backend, Plan, PlanExecutor, RecoveryPolicy, RecoveryStats, ReplayProgress, ResilientBackend,
    RetryBackoff, TiledBackend,
};
use simd2_apps::{harness, AppKind};
use simd2_fault::abft::AbftConfig;
use simd2_trace::{field, span, Tracer};

use crate::admission::{plan_input_bytes, validate_plan, TenantLedger, TenantQuota};
use crate::cache::{CacheStats, PlanCache};
use crate::job::{Deadline, JobId, JobOutcome, JobPayload, JobSpec, JobStatus, Rejected, TenantId};

/// Service-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Cap on jobs waiting across *all* tenants; submissions beyond it
    /// are rejected with [`Rejected::Backpressure`].
    pub max_queued_jobs: usize,
    /// Plan-cache entry capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Recovery policy every job executes under.
    pub policy: RecoveryPolicy,
    /// Backoff budget bounding the recovery retry loop.
    pub backoff: RetryBackoff,
    /// ABFT tolerances for result verification.
    pub abft: AbftConfig,
    /// Whether replay dispatches dependency waves through
    /// [`Backend::mmo_batch`] (inter-step parallelism).
    pub batched: bool,
    /// Largest problem dimension accepted for registry-app payloads
    /// (app expansion runs the generator and baseline at admission
    /// time, so it must be bounded).
    pub max_app_dimension: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_queued_jobs: 256,
            cache_capacity: 128,
            policy: RecoveryPolicy::RetryThenFallback { attempts: 3 },
            backoff: RetryBackoff::new(1, 8, 64),
            abft: AbftConfig::default(),
            batched: false,
            max_app_dimension: 256,
        }
    }
}

/// Per-tenant outcome counters, maintained by the scheduler and
/// mirrored one-for-one by [`span::SERVE`] telemetry events (the
/// `serve_soak` binary asserts exact equality).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions received (admitted + rejected).
    pub submitted: u64,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Submissions refused by the service-wide queue cap.
    pub rejected_backpressure: u64,
    /// Submissions refused by this tenant's quotas.
    pub rejected_quota: u64,
    /// Submissions that could never execute.
    pub rejected_malformed: u64,
    /// Jobs that completed (including cache hits).
    pub completed: u64,
    /// Jobs that ran out of deadline budget.
    pub expired: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Completed jobs the recovery layer had to rescue.
    pub recovered: u64,
    /// Completed jobs served from the plan cache.
    pub cache_hits: u64,
    /// Plan steps actually dispatched for this tenant.
    pub executed_steps: u64,
}

impl TenantStats {
    /// Total rejections across all classes.
    pub fn rejected(&self) -> u64 {
        self.rejected_backpressure + self.rejected_quota + self.rejected_malformed
    }

    /// Jobs that reached a terminal status.
    pub fn terminal(&self) -> u64 {
        self.completed + self.expired + self.failed
    }
}

/// One admitted, not-yet-executed job.
#[derive(Clone, Debug)]
struct QueuedJob {
    id: JobId,
    plan: Plan,
    deadline: Deadline,
    steps: u64,
    bytes: u64,
}

/// Everything the service tracks per tenant.
#[derive(Clone, Debug)]
struct TenantState {
    quota: TenantQuota,
    ledger: TenantLedger,
    queue: VecDeque<QueuedJob>,
    stats: TenantStats,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        Self {
            quota,
            ledger: TenantLedger::default(),
            queue: VecDeque::new(),
            stats: TenantStats::default(),
        }
    }
}

/// A multi-tenant plan service over one shared backend.
///
/// The backend is wrapped in a [`ResilientBackend`] so every job runs
/// through ABFT verification and the configured recovery policy. See
/// the [module docs](self) for the lifecycle and isolation story.
#[derive(Debug)]
pub struct PlanService<B: Backend> {
    backend: ResilientBackend<B>,
    /// Sequential clean recorder used to expand registry-app payloads.
    recorder: TiledBackend,
    /// Registration order doubles as the deterministic round-robin
    /// order.
    tenants: Vec<(TenantId, TenantState)>,
    cache: PlanCache,
    app_plans: HashMap<(AppKind, usize, u64), Plan>,
    outcomes: Vec<JobOutcome>,
    tracer: Tracer,
    next_job: u64,
    queued_total: usize,
    max_queued_jobs: usize,
    max_app_dimension: usize,
    batched: bool,
}

impl<B: Backend> PlanService<B> {
    /// Builds a service executing on `backend` under `config`.
    pub fn new(backend: B, config: ServeConfig) -> Self {
        Self {
            backend: ResilientBackend::with_config(backend, config.policy, config.abft)
                .with_backoff(config.backoff),
            recorder: TiledBackend::new(),
            tenants: Vec::new(),
            cache: PlanCache::new(config.cache_capacity),
            app_plans: HashMap::new(),
            outcomes: Vec::new(),
            tracer: Tracer::off(),
            next_job: 0,
            queued_total: 0,
            max_queued_jobs: config.max_queued_jobs,
            max_app_dimension: config.max_app_dimension,
            batched: config.batched,
        }
    }

    /// Attaches a telemetry tracer: job lifecycle instants
    /// ([`span::SERVE`]), plan replay spans, and recovery-layer events
    /// all land in the same sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.backend.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Registers `tenant` with `quota`, or updates the quota of an
    /// already-registered tenant (its queue and stats are kept).
    pub fn register_tenant(&mut self, tenant: TenantId, quota: TenantQuota) {
        match self.tenant_index(tenant) {
            Some(idx) => self.tenants[idx].1.quota = quota,
            None => self.tenants.push((tenant, TenantState::new(quota))),
        }
    }

    /// The registered tenants, in registration (= scheduling) order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|(t, _)| *t).collect()
    }

    fn tenant_index(&self, tenant: TenantId) -> Option<usize> {
        self.tenants.iter().position(|(t, _)| *t == tenant)
    }

    fn emit_stage(&self, stage: &'static str, tenant: TenantId, job: Option<JobId>) {
        match job {
            Some(id) => self.tracer.instant(
                span::SERVE,
                &[
                    field("stage", stage),
                    field("tenant", tenant.0),
                    field("job", id.0),
                ],
            ),
            None => self.tracer.instant(
                span::SERVE,
                &[field("stage", stage), field("tenant", tenant.0)],
            ),
        }
    }

    /// Submits a job for `tenant`.
    ///
    /// # Errors
    ///
    /// [`Rejected::Malformed`] for unknown tenants and structurally
    /// unexecutable payloads, [`Rejected::Backpressure`] when the
    /// service-wide queue is full, [`Rejected::QuotaExceeded`] when the
    /// tenant is over its own limits. Rejections consume no queue
    /// space.
    pub fn submit(&mut self, tenant: TenantId, spec: JobSpec) -> Result<JobId, Rejected> {
        let Some(idx) = self.tenant_index(tenant) else {
            return Err(Rejected::Malformed {
                reason: format!("{tenant} is not registered"),
            });
        };
        self.tenants[idx].1.stats.submitted += 1;
        self.emit_stage("submitted", tenant, None);
        let result = self.admit(idx, spec);
        match &result {
            Ok(id) => {
                self.tenants[idx].1.stats.admitted += 1;
                self.emit_stage("admitted", tenant, Some(*id));
            }
            Err(rejection) => {
                let stats = &mut self.tenants[idx].1.stats;
                match rejection {
                    Rejected::Backpressure { .. } => stats.rejected_backpressure += 1,
                    Rejected::QuotaExceeded { .. } => stats.rejected_quota += 1,
                    Rejected::Malformed { .. } => stats.rejected_malformed += 1,
                }
                self.emit_stage(rejection.stage(), tenant, None);
            }
        }
        result
    }

    fn admit(&mut self, idx: usize, spec: JobSpec) -> Result<JobId, Rejected> {
        let plan = match spec.payload {
            JobPayload::Plan(plan) => plan,
            JobPayload::App { app, n, seed } => self.app_plan(app, n, seed)?,
        };
        validate_plan(&plan)?;
        if self.queued_total >= self.max_queued_jobs {
            return Err(Rejected::Backpressure {
                queued: self.queued_total,
                capacity: self.max_queued_jobs,
            });
        }
        let steps = plan.step_count() as u64;
        let bytes = plan_input_bytes(&plan);
        {
            let state = &self.tenants[idx].1;
            state.ledger.admit(&state.quota, steps, bytes)?;
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        let state = &mut self.tenants[idx].1;
        state.ledger.in_flight += 1;
        state.ledger.queued_steps += steps;
        state.ledger.queued_bytes += bytes;
        state.queue.push_back(QueuedJob {
            id,
            plan,
            deadline: spec.deadline,
            steps,
            bytes,
        });
        self.queued_total += 1;
        Ok(id)
    }

    /// Expands a registry-app payload to its recorded plan on the
    /// internal sequential recorder, memoized per `(app, n, seed)`.
    /// Expansion happens at admission so quotas and deadlines see the
    /// plan's real step count.
    fn app_plan(&mut self, app: AppKind, n: usize, seed: u64) -> Result<Plan, Rejected> {
        if n < 16 || n > self.max_app_dimension {
            return Err(Rejected::Malformed {
                reason: format!("app dimension {n} outside 16..={}", self.max_app_dimension),
            });
        }
        if let Some(plan) = self.app_plans.get(&(app, n, seed)) {
            return Ok(plan.clone());
        }
        let run = harness::run_app(
            &mut self.recorder,
            app,
            n,
            seed,
            ClosureAlgorithm::Leyzorek,
            true,
        );
        self.app_plans.insert((app, n, seed), run.plan.clone());
        Ok(run.plan)
    }

    /// Drains every tenant queue: each cycle visits tenants in
    /// registration order and executes up to `weight` jobs per tenant,
    /// so a weight-2 tenant drains twice as fast as a weight-1 tenant
    /// under contention. Returns the number of jobs executed. Every
    /// executed job lands one [`JobOutcome`] — deterministically, in
    /// scheduling order.
    pub fn run_until_idle(&mut self) -> usize {
        let mut executed = 0;
        loop {
            let mut progressed = false;
            for idx in 0..self.tenants.len() {
                let weight = self.tenants[idx].1.quota.weight.max(1);
                for _ in 0..weight {
                    let Some(job) = self.tenants[idx].1.queue.pop_front() else {
                        break;
                    };
                    self.execute(idx, job);
                    executed += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return executed;
            }
        }
    }

    /// Executes one job to its terminal status.
    fn execute(&mut self, idx: usize, job: QueuedJob) {
        let tenant = self.tenants[idx].0;
        {
            let ledger = &mut self.tenants[idx].1.ledger;
            ledger.queued_steps -= job.steps;
            ledger.queued_bytes -= job.bytes;
        }
        self.queued_total -= 1;
        let total_steps = job.plan.step_count() as u64;
        let key = job.plan.cache_key();
        let status = if let Some(output) = self.cache.get(&key) {
            JobStatus::Completed {
                output,
                cache_hit: true,
                recovered: false,
                executed_steps: 0,
            }
        } else {
            let before = self.backend.recovery_stats();
            let deadline = job.deadline;
            let mut control = |p: ReplayProgress| {
                if deadline.allows(p.completed_steps as u64, p.pending_steps as u64) {
                    Ok(())
                } else {
                    Err(format!(
                        "deadline: step budget {}",
                        deadline.budget().unwrap_or(0)
                    ))
                }
            };
            let executor = if self.batched {
                PlanExecutor::batched()
            } else {
                PlanExecutor::new()
            }
            .with_tracer(self.tracer.clone());
            match executor.run_controlled(&job.plan, &mut self.backend, &mut control) {
                Ok(replay) => {
                    let after = self.backend.recovery_stats();
                    let recovered = after.retry_successes != before.retry_successes
                        || after.panic_recoveries != before.panic_recoveries
                        || after.fallbacks != before.fallbacks;
                    let output = replay
                        .into_final_output()
                        .expect("admitted plans are non-empty");
                    self.cache.insert(key, output.clone());
                    JobStatus::Completed {
                        output,
                        cache_hit: false,
                        recovered,
                        executed_steps: total_steps,
                    }
                }
                Err(err) if err.is_cancelled() => JobStatus::Expired {
                    executed_steps: err.completed_steps as u64,
                    budget: job.deadline.budget().unwrap_or(0),
                    total_steps,
                },
                Err(err) => JobStatus::Failed {
                    step: err.step,
                    executed_steps: err.completed_steps as u64,
                    error: err
                        .backend_error()
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                },
            }
        };
        let executed_steps = match &status {
            JobStatus::Completed { executed_steps, .. }
            | JobStatus::Expired { executed_steps, .. }
            | JobStatus::Failed { executed_steps, .. } => *executed_steps,
        };
        {
            let state = &mut self.tenants[idx].1;
            state.ledger.in_flight -= 1;
            state.stats.executed_steps += executed_steps;
            match &status {
                JobStatus::Completed {
                    cache_hit,
                    recovered,
                    ..
                } => {
                    state.stats.completed += 1;
                    if *cache_hit {
                        state.stats.cache_hits += 1;
                    }
                    if *recovered {
                        state.stats.recovered += 1;
                    }
                }
                JobStatus::Expired { .. } => state.stats.expired += 1,
                JobStatus::Failed { .. } => state.stats.failed += 1,
            }
        }
        self.tracer.instant(
            span::SERVE,
            &[
                field("stage", status.label()),
                field("tenant", tenant.0),
                field("job", job.id.0),
                field("executed_steps", executed_steps),
            ],
        );
        if let JobStatus::Completed {
            cache_hit,
            recovered,
            ..
        } = &status
        {
            if *cache_hit {
                self.emit_stage("cache_hit", tenant, Some(job.id));
            }
            if *recovered {
                self.emit_stage("recovered", tenant, Some(job.id));
            }
        }
        self.outcomes.push(JobOutcome {
            tenant,
            job: job.id,
            status,
        });
    }

    /// Drains the accumulated terminal outcomes, in execution order.
    pub fn take_outcomes(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// A tenant's outcome counters (`None` if unregistered).
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenant_index(tenant).map(|i| self.tenants[i].1.stats)
    }

    /// A tenant's live admission ledger (`None` if unregistered).
    pub fn tenant_ledger(&self, tenant: TenantId) -> Option<TenantLedger> {
        self.tenant_index(tenant).map(|i| self.tenants[i].1.ledger)
    }

    /// Jobs currently queued across all tenants.
    pub fn queued_jobs(&self) -> usize {
        self.queued_total
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared recovery layer's counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.backend.recovery_stats()
    }

    /// The resilient execution backend (e.g. to inspect the wrapped
    /// inner backend).
    pub fn resilient(&self) -> &ResilientBackend<B> {
        &self.backend
    }

    /// Mutable access to the resilient execution backend (e.g. to
    /// install fault injectors in chaos tests).
    pub fn resilient_mut(&mut self) -> &mut ResilientBackend<B> {
        &mut self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::{Parallelism, PlanBuilder};
    use simd2_fault::PanicProbeUnit;
    use simd2_matrix::Matrix;
    use simd2_mxu::Simd2Unit;
    use simd2_semiring::OpKind;
    use simd2_trace::RingSink;

    /// Records a `len`-step min-plus chain over `side`-square inputs
    /// filled with `fill` (distinct fills → distinct cache keys).
    fn chain_plan(len: usize, side: usize, fill: f32) -> Plan {
        let a = Matrix::from_fn(side, side, |r, c| fill + (r * side + c) as f32);
        let c = Matrix::filled(side, side, f32::INFINITY);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let mut cur = rec.mmo(OpKind::MinPlus, &a, &a, &c).unwrap();
        for _ in 1..len {
            cur = rec.mmo(OpKind::MinPlus, &cur, &a, &c).unwrap();
        }
        rec.finish()
    }

    /// The sequential clean-replay oracle every completed job must
    /// match bit-for-bit.
    fn clean_output(plan: &Plan) -> Matrix {
        PlanExecutor::new()
            .run(plan, &mut TiledBackend::new())
            .unwrap()
            .into_final_output()
            .unwrap()
    }

    fn assert_bit_identical(got: &Matrix, want: &Matrix) {
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "outputs diverge");
        }
    }

    fn service() -> PlanService<TiledBackend> {
        PlanService::new(TiledBackend::new(), ServeConfig::default())
    }

    #[test]
    fn unknown_tenants_are_rejected_as_malformed() {
        let mut svc = service();
        let err = svc
            .submit(TenantId(9), JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap_err();
        assert!(matches!(err, Rejected::Malformed { .. }));
        assert!(svc.tenant_stats(TenantId(9)).is_none());
    }

    #[test]
    fn completed_jobs_are_bit_identical_to_a_clean_sequential_replay() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 1.0);
        let want = clean_output(&plan);
        let id = svc.submit(t, JobSpec::plan(plan)).unwrap();
        assert_eq!(svc.run_until_idle(), 1);
        let outcomes = svc.take_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].job, id);
        let JobStatus::Completed {
            output,
            cache_hit,
            recovered,
            executed_steps,
        } = &outcomes[0].status
        else {
            panic!("expected completion, got {:?}", outcomes[0].status);
        };
        assert!(!cache_hit);
        assert!(!recovered);
        assert_eq!(*executed_steps, 3);
        assert_bit_identical(output, &want);
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!(
            (stats.submitted, stats.admitted, stats.completed),
            (1, 1, 1)
        );
        assert_eq!(stats.executed_steps, 3);
        assert_eq!(svc.tenant_ledger(t).unwrap(), TenantLedger::default());
    }

    #[test]
    fn tenant_quotas_reject_with_explicit_responses() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default().with_max_in_flight(1));
        svc.submit(t, JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap();
        let err = svc
            .submit(t, JobSpec::plan(chain_plan(1, 16, 1.0)))
            .unwrap_err();
        assert!(matches!(
            err,
            Rejected::QuotaExceeded {
                quota: "in_flight_jobs",
                ..
            }
        ));
        assert_eq!(svc.tenant_stats(t).unwrap().rejected_quota, 1);
        // Draining the queue frees the quota.
        svc.run_until_idle();
        assert!(svc.submit(t, JobSpec::plan(chain_plan(1, 16, 1.0))).is_ok());
    }

    #[test]
    fn service_wide_backpressure_spills_over_to_other_tenants() {
        let config = ServeConfig {
            max_queued_jobs: 1,
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default());
        svc.register_tenant(t1, TenantQuota::default());
        svc.submit(t0, JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap();
        let err = svc
            .submit(t1, JobSpec::plan(chain_plan(1, 16, 1.0)))
            .unwrap_err();
        assert!(matches!(
            err,
            Rejected::Backpressure {
                queued: 1,
                capacity: 1
            }
        ));
        assert_eq!(svc.tenant_stats(t1).unwrap().rejected_backpressure, 1);
    }

    #[test]
    fn weighted_round_robin_drains_in_registration_order_by_weight() {
        let mut svc = service();
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default().with_weight(2));
        svc.register_tenant(t1, TenantQuota::default().with_weight(1));
        for i in 0..4 {
            svc.submit(t0, JobSpec::plan(chain_plan(1, 16, i as f32)))
                .unwrap();
        }
        for i in 0..2 {
            svc.submit(t1, JobSpec::plan(chain_plan(1, 16, 100.0 + i as f32)))
                .unwrap();
        }
        assert_eq!(svc.run_until_idle(), 6);
        let order: Vec<TenantId> = svc.take_outcomes().iter().map(|o| o.tenant).collect();
        assert_eq!(order, vec![t0, t0, t1, t0, t0, t1]);
    }

    #[test]
    fn deadlines_expire_at_step_boundaries_with_exact_accounting() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 2.0);
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(1)),
        )
        .unwrap();
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(0)),
        )
        .unwrap();
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(3)),
        )
        .unwrap();
        assert_eq!(svc.run_until_idle(), 3);
        let outcomes = svc.take_outcomes();
        assert!(matches!(
            outcomes[0].status,
            JobStatus::Expired {
                executed_steps: 1,
                budget: 1,
                total_steps: 3
            }
        ));
        assert!(matches!(
            outcomes[1].status,
            JobStatus::Expired {
                executed_steps: 0,
                budget: 0,
                total_steps: 3
            }
        ));
        assert!(matches!(
            &outcomes[2].status,
            JobStatus::Completed {
                executed_steps: 3,
                ..
            }
        ));
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.expired, stats.completed), (2, 1));
        // 1 step from the first job, 0 from the second, 3 from the
        // third. The expired jobs' partial work is still accounted.
        assert_eq!(stats.executed_steps, 4);
    }

    #[test]
    fn structurally_identical_resubmission_hits_the_cache_bit_identically() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        // Recorded independently: equal cache keys come from content,
        // not object identity.
        svc.submit(t, JobSpec::plan(chain_plan(2, 16, 3.0)))
            .unwrap();
        svc.submit(t, JobSpec::plan(chain_plan(2, 16, 3.0)))
            .unwrap();
        // A deadline too tight to run even one step: the cache hit
        // bypasses execution entirely, so it still completes.
        svc.submit(
            t,
            JobSpec::plan(chain_plan(2, 16, 3.0)).with_deadline(Deadline::Steps(0)),
        )
        .unwrap();
        assert_eq!(svc.run_until_idle(), 3);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed { output: cold, .. } = &outcomes[0].status else {
            panic!("cold run should complete");
        };
        for outcome in &outcomes[1..] {
            let JobStatus::Completed {
                output,
                cache_hit,
                executed_steps,
                ..
            } = &outcome.status
            else {
                panic!("cache hit should complete, got {:?}", outcome.status);
            };
            assert!(cache_hit);
            assert_eq!(*executed_steps, 0);
            assert_bit_identical(output, cold);
        }
        let cache = svc.cache_stats();
        assert_eq!((cache.hits, cache.misses, cache.entries), (2, 1, 1));
        assert_eq!(svc.tenant_stats(t).unwrap().cache_hits, 2);
    }

    #[test]
    fn app_payloads_expand_at_admission_and_cache_across_submissions() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        svc.submit(t, JobSpec::app(AppKind::Apsp, 32, 7)).unwrap();
        svc.submit(t, JobSpec::app(AppKind::Apsp, 32, 7)).unwrap();
        let err = svc
            .submit(t, JobSpec::app(AppKind::Apsp, 100_000, 7))
            .unwrap_err();
        assert!(matches!(err, Rejected::Malformed { .. }));
        assert_eq!(svc.run_until_idle(), 2);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed {
            output: cold,
            cache_hit: false,
            ..
        } = &outcomes[0].status
        else {
            panic!("app job should complete cold");
        };
        let JobStatus::Completed {
            output: warm,
            cache_hit: true,
            ..
        } = &outcomes[1].status
        else {
            panic!("identical app job should hit the cache");
        };
        assert_bit_identical(warm, cold);
    }

    #[test]
    fn a_poisoned_tenant_stays_deterministic_and_neighbours_stay_clean() {
        // NaN inputs are *legitimate* to ABFT (NaN-in → NaN-out): the
        // poisoned job completes, deterministically, with its own
        // clean-replay bits — and the poison never leaks into another
        // tenant's outputs through the shared backend.
        let mut svc = service();
        let (bad, good) = (TenantId(0), TenantId(1));
        svc.register_tenant(bad, TenantQuota::default());
        svc.register_tenant(good, TenantQuota::default());

        let mut poisoned = Matrix::filled(16, 16, 1.0);
        poisoned.as_mut_slice()[7] = f32::NAN;
        let zero = Matrix::filled(16, 16, 0.0);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(OpKind::PlusMul, &poisoned, &poisoned, &zero)
            .unwrap();
        let bad_plan = rec.finish();
        let want_bad = clean_output(&bad_plan);
        assert!(want_bad.as_slice().iter().any(|v| v.is_nan()));

        let good_plan = chain_plan(2, 16, 5.0);
        let want_good = clean_output(&good_plan);
        svc.submit(bad, JobSpec::plan(bad_plan)).unwrap();
        svc.submit(good, JobSpec::plan(good_plan)).unwrap();
        assert_eq!(svc.run_until_idle(), 2);

        for outcome in svc.take_outcomes() {
            let JobStatus::Completed { output, .. } = outcome.status else {
                panic!("both jobs complete, got {:?}", outcome.status);
            };
            if outcome.tenant == bad {
                assert_bit_identical(&output, &want_bad);
            } else {
                assert!(output.as_slice().iter().all(|v| !v.is_nan()));
                assert_bit_identical(&output, &want_good);
            }
        }
    }

    #[test]
    fn exhausted_recovery_surfaces_an_explicit_failure_with_step_index() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        // Full-rate persistent faults: every attempt is detected, the
        // retry policy exhausts, and the job fails explicitly — with
        // the failing step attributed.
        let plan = FaultPlan::new(FaultPlanConfig::new(5).with_transient_nan_ppm(1_000_000));
        let inner = TiledBackend::with_unit(FaultySimd2Unit::new(
            Simd2Unit::new(),
            PlannedInjector::new(plan),
        ));
        let config = ServeConfig {
            policy: RecoveryPolicy::Retry { attempts: 2 },
            abft: AbftConfig {
                witness_samples: usize::MAX,
                ..AbftConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(inner, config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());

        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let a = Matrix::filled(16, 16, 1.0);
        let zero = Matrix::filled(16, 16, 0.0);
        rec.mmo(OpKind::PlusMul, &a, &a, &zero).unwrap();
        let doomed = rec.finish();

        svc.submit(t, JobSpec::plan(doomed)).unwrap();
        assert_eq!(svc.run_until_idle(), 1);
        let outcomes = svc.take_outcomes();
        let JobStatus::Failed {
            step,
            executed_steps,
            error,
        } = &outcomes[0].status
        else {
            panic!("doomed job must fail, got {:?}", outcomes[0].status);
        };
        assert_eq!(*step, 0);
        assert_eq!(*executed_steps, 0);
        assert!(!error.is_empty());
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.failed, stats.completed), (1, 0));
        let recovery = svc.recovery_stats();
        assert!(recovery.detections >= 3, "initial try + 2 retries detected");
        assert_eq!(recovery.retries, 2);
    }

    #[test]
    fn a_panicking_tenant_recovers_without_touching_neighbours() {
        // Worker shards panic at tile row 1: only tenant 0's 48-row
        // jobs strike it; tenant 1's single-tile jobs never do.
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
        inner.set_parallelism(Parallelism::Threads(3));
        let mut svc = PlanService::new(inner, ServeConfig::default());
        let (chaos, calm) = (TenantId(0), TenantId(1));
        svc.register_tenant(chaos, TenantQuota::default());
        svc.register_tenant(calm, TenantQuota::default());

        let tall = chain_plan(2, 48, 1.0);
        let small = chain_plan(2, 16, 2.0);
        let want_tall = clean_output(&tall);
        let want_small = clean_output(&small);
        svc.submit(chaos, JobSpec::plan(tall)).unwrap();
        svc.submit(calm, JobSpec::plan(small)).unwrap();
        assert_eq!(svc.run_until_idle(), 2);

        let outcomes = svc.take_outcomes();
        for outcome in &outcomes {
            let JobStatus::Completed {
                output, recovered, ..
            } = &outcome.status
            else {
                panic!("both tenants must complete, got {:?}", outcome.status);
            };
            if outcome.tenant == chaos {
                assert!(recovered, "panicked job recovers sequentially");
                assert_bit_identical(output, &want_tall);
            } else {
                assert!(!recovered, "calm tenant untouched by the panic");
                assert_bit_identical(output, &want_small);
            }
        }
        assert_eq!(svc.tenant_stats(chaos).unwrap().recovered, 1);
        assert_eq!(svc.tenant_stats(calm).unwrap().recovered, 0);
        assert!(svc.recovery_stats().panic_recoveries >= 1);
    }

    #[test]
    fn telemetry_events_mirror_tenant_stats_exactly() {
        let sink = RingSink::shared();
        let mut svc = service().with_tracer(Tracer::to(sink.clone()));
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default().with_max_in_flight(2));
        svc.register_tenant(t1, TenantQuota::default());

        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 0.0)))
            .unwrap();
        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 0.0)))
            .unwrap();
        // Third submission trips t0's in-flight quota.
        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 1.0)))
            .unwrap_err();
        svc.submit(
            t1,
            JobSpec::plan(chain_plan(3, 16, 2.0)).with_deadline(Deadline::Steps(1)),
        )
        .unwrap();
        // Empty plan: malformed.
        let empty = PlanBuilder::over(&mut TiledBackend::new()).finish();
        svc.submit(t1, JobSpec::plan(empty)).unwrap_err();
        svc.run_until_idle();

        for tenant in [t0, t1] {
            let stats = svc.tenant_stats(tenant).unwrap();
            let count = |stage: &str| -> u64 {
                sink.events()
                    .iter()
                    .filter(|e| e.is_stage(span::SERVE, stage))
                    .filter(|e| e.u64("tenant") == Some(tenant.0 as u64))
                    .count() as u64
            };
            assert_eq!(count("submitted"), stats.submitted);
            assert_eq!(count("admitted"), stats.admitted);
            assert_eq!(count("rejected_backpressure"), stats.rejected_backpressure);
            assert_eq!(count("rejected_quota"), stats.rejected_quota);
            assert_eq!(count("rejected_malformed"), stats.rejected_malformed);
            assert_eq!(count("completed"), stats.completed);
            assert_eq!(count("expired"), stats.expired);
            assert_eq!(count("failed"), stats.failed);
            assert_eq!(count("cache_hit"), stats.cache_hits);
            assert_eq!(count("recovered"), stats.recovered);
            let executed: u64 = sink
                .events()
                .iter()
                .filter(|e| {
                    (e.is_stage(span::SERVE, "completed")
                        || e.is_stage(span::SERVE, "expired")
                        || e.is_stage(span::SERVE, "failed"))
                        && e.u64("tenant") == Some(tenant.0 as u64)
                })
                .filter_map(|e| e.u64("executed_steps"))
                .sum();
            assert_eq!(executed, stats.executed_steps);
        }
    }
}
