//! The plan service: admission → per-tenant queues → weighted
//! round-robin scheduling → resilient execution → terminal outcomes.
//!
//! # Lifecycle
//!
//! [`PlanService::submit`] validates the payload (expanding registry
//! apps to their recorded plans), applies the service-wide backpressure
//! gate and the tenant's [`TenantQuota`], and either enqueues the job
//! or returns an explicit [`Rejected`]. [`PlanService::run_until_idle`]
//! drains the per-tenant FIFO queues in weighted round-robin order;
//! each job replays through the shared [`ResilientBackend`] under its
//! [`Deadline`] (a step-boundary [`ReplayControl`](simd2::ReplayControl)
//! budget check) and lands exactly one [`JobOutcome`].
//!
//! # Isolation
//!
//! Tenants share one backend but nothing else. A worker panic inside
//! tenant A's job is contained by the backend's panic isolation and
//! recovered sequentially; a poisoned input fails *that job* with
//! [`JobStatus::Failed`] after the recovery policy exhausts; neither
//! corrupts, delays past deadline bounds, nor aborts tenant B's jobs.
//! The `serve_soak` binary proves this under seeded chaos sweeps.

use std::collections::HashMap;
use std::collections::VecDeque;

use simd2::solve::ClosureAlgorithm;
use simd2::{
    Backend, HaltedReplay, PassPipeline, Plan, PlanCheckpoint, PlanExecutor, PlanKey,
    RecoveryPolicy, RecoveryStats, ReplayProgress, ResilientBackend, RetryBackoff, TiledBackend,
};
use simd2_apps::{harness, AppKind};
use simd2_fault::abft::AbftConfig;
use simd2_semiring::simd::KernelIsa;
use simd2_trace::{field, span, Tracer};

use crate::admission::{plan_input_bytes, validate_plan, TenantLedger, TenantQuota};
use crate::breaker::{Breaker, BreakerConfig};
use crate::cache::{CacheStats, PlanCache};
use crate::job::{Deadline, JobId, JobOutcome, JobPayload, JobSpec, JobStatus, Rejected, TenantId};

/// Service-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Cap on jobs waiting across *all* tenants; submissions beyond it
    /// are rejected with [`Rejected::Backpressure`].
    pub max_queued_jobs: usize,
    /// Plan-cache entry capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Recovery policy every job executes under.
    pub policy: RecoveryPolicy,
    /// Backoff budget bounding the recovery retry loop.
    pub backoff: RetryBackoff,
    /// ABFT tolerances for result verification.
    pub abft: AbftConfig,
    /// Whether replay dispatches dependency waves through
    /// [`Backend::mmo_batch`] (inter-step parallelism).
    pub batched: bool,
    /// Largest problem dimension accepted for registry-app payloads
    /// (app expansion runs the generator and baseline at admission
    /// time, so it must be bounded).
    pub max_app_dimension: usize,
    /// Per-tenant and per-plan circuit-breaker thresholds (disabled by
    /// default).
    pub breaker: BreakerConfig,
    /// Wave-granular checkpoint/resume scheduling (disabled by
    /// default). Arming this also disables the recovery layer's
    /// in-place panic recovery: worker panics surface to the scheduler,
    /// which checkpoints and resumes instead.
    pub resume: ResumeConfig,
    /// Degradation-ladder thresholds (disabled by default).
    pub degrade: DegradeConfig,
    /// Run every admitted plan through the serving pass pipeline
    /// ([`PassPipeline::serving`]: CSE, final-output-rooted dead-step
    /// elimination, chain fusion, cost-model wave scheduling) before
    /// quota accounting and queueing (disabled by default). Quotas,
    /// deadlines, and the plan cache then all see the *optimized*
    /// plan — in particular the cache keys on the post-optimization
    /// structural hash, so differently-recorded but
    /// post-optimization-identical plans share one entry. Final
    /// outputs are bit-identical to replaying the unoptimized plan.
    pub optimize_plans: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_queued_jobs: 256,
            cache_capacity: 128,
            policy: RecoveryPolicy::RetryThenFallback { attempts: 3 },
            backoff: RetryBackoff::new(1, 8, 64),
            abft: AbftConfig::default(),
            batched: false,
            max_app_dimension: 256,
            breaker: BreakerConfig::default(),
            resume: ResumeConfig::default(),
            degrade: DegradeConfig::default(),
            optimize_plans: false,
        }
    }
}

/// Checkpoint/resume scheduling policy.
///
/// With `max_resumes == 0` (the default) resume is disabled and the
/// service discards partial work on expiry, exactly as before. Armed,
/// a job halted by its deadline budget, the round quantum, or a worker
/// panic is *suspended*: its [`PlanCheckpoint`] rides along on the
/// queue entry, the job re-enqueues at the back of its tenant's queue,
/// and a later scheduling round resumes it — completed waves are never
/// re-executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeConfig {
    /// Most plan steps one scheduling round may dispatch for a single
    /// job (`0` = unlimited: the job runs until its deadline budget or
    /// a failure stops it).
    pub quantum: u64,
    /// Most times one job may be suspended and resumed before the
    /// scheduler gives up and lands a terminal status (`0` disables
    /// resume entirely).
    pub max_resumes: u64,
}

impl ResumeConfig {
    /// Whether checkpoint/resume is armed.
    pub fn armed(&self) -> bool {
        self.max_resumes != 0
    }
}

/// Degradation-ladder thresholds. Each rung fires at most once, for
/// the life of the service, and emits a [`span::SERVE`] event when it
/// does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradeConfig {
    /// ABFT detections observed while the backend runs a vector kernel
    /// tier after which the backend is pinned to the scalar kernel
    /// (`0` disables the rung).
    pub scalar_after_detections: u64,
    /// Worker panics after which parallel dispatch is demoted to
    /// sequential (`0` disables the rung).
    pub sequential_after_panics: u64,
}

/// The degradation ladder's observable state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradeState {
    /// Whether the scalar-kernel rung has fired.
    pub scalar_pinned: bool,
    /// Whether the sequential-dispatch rung has fired.
    pub sequential: bool,
    /// ABFT detections accumulated while a vector tier was active.
    pub vector_detections: u64,
    /// Worker panics accumulated toward the sequential rung.
    pub panic_strikes: u64,
}

/// Per-tenant outcome counters, maintained by the scheduler and
/// mirrored one-for-one by [`span::SERVE`] telemetry events (the
/// `serve_soak` binary asserts exact equality).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions received (admitted + rejected).
    pub submitted: u64,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Submissions refused by the service-wide queue cap.
    pub rejected_backpressure: u64,
    /// Submissions refused by this tenant's quotas.
    pub rejected_quota: u64,
    /// Submissions that could never execute.
    pub rejected_malformed: u64,
    /// Jobs that completed (including cache hits).
    pub completed: u64,
    /// Jobs that ran out of deadline budget.
    pub expired: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Completed jobs the recovery layer had to rescue.
    pub recovered: u64,
    /// Completed jobs served from the plan cache.
    pub cache_hits: u64,
    /// Plan steps actually dispatched for this tenant (each step
    /// counted once, across the initial round and every resume).
    pub executed_steps: u64,
    /// Scheduling rounds that suspended a job at a wave boundary with
    /// its checkpoint kept.
    pub suspended: u64,
    /// Scheduling rounds that resumed a suspended job from its
    /// checkpoint.
    pub resumed: u64,
    /// Circuit-breaker trips (tenant and plan breakers) caused by this
    /// tenant's failures.
    pub breaker_trips: u64,
    /// Jobs refused by an open breaker without executing.
    pub breaker_short_circuits: u64,
    /// Jobs refused because their plan is quarantined.
    pub quarantined: u64,
    /// Fault-injector log entries dropped by ring-buffer overflow
    /// while this tenant's jobs executed.
    pub fault_log_dropped: u64,
}

impl TenantStats {
    /// Total rejections across all classes.
    pub fn rejected(&self) -> u64 {
        self.rejected_backpressure + self.rejected_quota + self.rejected_malformed
    }

    /// Jobs that reached a terminal status.
    pub fn terminal(&self) -> u64 {
        self.completed + self.expired + self.failed + self.quarantined
    }
}

/// One admitted job waiting for a scheduling round — fresh, or
/// suspended mid-plan with its checkpoint riding along.
#[derive(Clone, Debug)]
struct QueuedJob {
    id: JobId,
    plan: Plan,
    deadline: Deadline,
    steps: u64,
    bytes: u64,
    /// Completed-wave state from a previous round (`None` until the
    /// job's first suspension).
    checkpoint: Option<PlanCheckpoint>,
}

/// Everything the service tracks per tenant.
#[derive(Clone, Debug)]
struct TenantState {
    quota: TenantQuota,
    ledger: TenantLedger,
    queue: VecDeque<QueuedJob>,
    stats: TenantStats,
    breaker: Breaker,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        Self {
            quota,
            ledger: TenantLedger::default(),
            queue: VecDeque::new(),
            stats: TenantStats::default(),
            breaker: Breaker::new(),
        }
    }
}

/// A multi-tenant plan service over one shared backend.
///
/// The backend is wrapped in a [`ResilientBackend`] so every job runs
/// through ABFT verification and the configured recovery policy. See
/// the [module docs](self) for the lifecycle and isolation story.
#[derive(Debug)]
pub struct PlanService<B: Backend> {
    backend: ResilientBackend<B>,
    /// Sequential clean recorder used to expand registry-app payloads.
    recorder: TiledBackend,
    /// Registration order doubles as the deterministic round-robin
    /// order.
    tenants: Vec<(TenantId, TenantState)>,
    cache: PlanCache,
    app_plans: HashMap<(AppKind, usize, u64), Plan>,
    /// Per-plan circuit breakers (populated only when breakers are
    /// armed; one entry per distinct executed plan).
    plan_breakers: HashMap<PlanKey, Breaker>,
    outcomes: Vec<JobOutcome>,
    tracer: Tracer,
    next_job: u64,
    queued_total: usize,
    max_queued_jobs: usize,
    max_app_dimension: usize,
    batched: bool,
    breaker_config: BreakerConfig,
    resume_config: ResumeConfig,
    degrade_config: DegradeConfig,
    degrade: DegradeState,
    optimize_plans: bool,
}

impl<B: Backend> PlanService<B> {
    /// Builds a service executing on `backend` under `config`.
    pub fn new(backend: B, config: ServeConfig) -> Self {
        let mut backend = ResilientBackend::with_config(backend, config.policy, config.abft)
            .with_backoff(config.backoff);
        // With resume armed the scheduler owns panic handling: the
        // recovery layer surfaces worker panics instead of re-running
        // sequentially in place, so the halt lands a checkpoint.
        if config.resume.armed() {
            backend.set_recover_panics(false);
        }
        Self {
            backend,
            recorder: TiledBackend::new(),
            tenants: Vec::new(),
            cache: PlanCache::new(config.cache_capacity),
            app_plans: HashMap::new(),
            plan_breakers: HashMap::new(),
            outcomes: Vec::new(),
            tracer: Tracer::off(),
            next_job: 0,
            queued_total: 0,
            max_queued_jobs: config.max_queued_jobs,
            max_app_dimension: config.max_app_dimension,
            batched: config.batched,
            breaker_config: config.breaker,
            resume_config: config.resume,
            degrade_config: config.degrade,
            degrade: DegradeState::default(),
            optimize_plans: config.optimize_plans,
        }
    }

    /// Attaches a telemetry tracer: job lifecycle instants
    /// ([`span::SERVE`]), plan replay spans, and recovery-layer events
    /// all land in the same sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.backend.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Registers `tenant` with `quota`, or updates the quota of an
    /// already-registered tenant (its queue and stats are kept).
    pub fn register_tenant(&mut self, tenant: TenantId, quota: TenantQuota) {
        match self.tenant_index(tenant) {
            Some(idx) => self.tenants[idx].1.quota = quota,
            None => self.tenants.push((tenant, TenantState::new(quota))),
        }
    }

    /// The registered tenants, in registration (= scheduling) order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|(t, _)| *t).collect()
    }

    fn tenant_index(&self, tenant: TenantId) -> Option<usize> {
        self.tenants.iter().position(|(t, _)| *t == tenant)
    }

    fn emit_stage(&self, stage: &'static str, tenant: TenantId, job: Option<JobId>) {
        match job {
            Some(id) => self.tracer.instant(
                span::SERVE,
                &[
                    field("stage", stage),
                    field("tenant", tenant.0),
                    field("job", id.0),
                ],
            ),
            None => self.tracer.instant(
                span::SERVE,
                &[field("stage", stage), field("tenant", tenant.0)],
            ),
        }
    }

    /// Submits a job for `tenant`.
    ///
    /// # Errors
    ///
    /// [`Rejected::Malformed`] for unknown tenants and structurally
    /// unexecutable payloads, [`Rejected::Backpressure`] when the
    /// service-wide queue is full, [`Rejected::QuotaExceeded`] when the
    /// tenant is over its own limits. Rejections consume no queue
    /// space.
    pub fn submit(&mut self, tenant: TenantId, spec: JobSpec) -> Result<JobId, Rejected> {
        let Some(idx) = self.tenant_index(tenant) else {
            return Err(Rejected::Malformed {
                reason: format!("{tenant} is not registered"),
            });
        };
        self.tenants[idx].1.stats.submitted += 1;
        self.emit_stage("submitted", tenant, None);
        let result = self.admit(idx, spec);
        match &result {
            Ok(id) => {
                self.tenants[idx].1.stats.admitted += 1;
                self.emit_stage("admitted", tenant, Some(*id));
            }
            Err(rejection) => {
                let stats = &mut self.tenants[idx].1.stats;
                match rejection {
                    Rejected::Backpressure { .. } => stats.rejected_backpressure += 1,
                    Rejected::QuotaExceeded { .. } => stats.rejected_quota += 1,
                    Rejected::Malformed { .. } => stats.rejected_malformed += 1,
                }
                self.emit_stage(rejection.stage(), tenant, None);
            }
        }
        result
    }

    fn admit(&mut self, idx: usize, spec: JobSpec) -> Result<JobId, Rejected> {
        let plan = match spec.payload {
            JobPayload::Plan(plan) => plan,
            JobPayload::App { app, n, seed } => self.app_plan(app, n, seed)?,
        };
        validate_plan(&plan)?;
        // Optimization happens before quota accounting and queueing, so
        // steps/bytes ledgers, deadline budgets, and — crucially — the
        // plan cache key all describe the plan that actually replays.
        // The serving pipeline's final-output-rooted DSE guarantees the
        // optimized plan's final output is the original's, bit for bit.
        let plan = if self.optimize_plans {
            PassPipeline::serving().run(plan).into_plan()
        } else {
            plan
        };
        if self.queued_total >= self.max_queued_jobs {
            return Err(Rejected::Backpressure {
                queued: self.queued_total,
                capacity: self.max_queued_jobs,
            });
        }
        let steps = plan.step_count() as u64;
        let bytes = plan_input_bytes(&plan);
        {
            let state = &self.tenants[idx].1;
            state.ledger.admit(&state.quota, steps, bytes)?;
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        let state = &mut self.tenants[idx].1;
        state.ledger.in_flight += 1;
        state.ledger.queued_steps += steps;
        state.ledger.queued_bytes += bytes;
        state.queue.push_back(QueuedJob {
            id,
            plan,
            deadline: spec.deadline,
            steps,
            bytes,
            checkpoint: None,
        });
        self.queued_total += 1;
        Ok(id)
    }

    /// Expands a registry-app payload to its recorded plan on the
    /// internal sequential recorder, memoized per `(app, n, seed)`.
    /// Expansion happens at admission so quotas and deadlines see the
    /// plan's real step count.
    fn app_plan(&mut self, app: AppKind, n: usize, seed: u64) -> Result<Plan, Rejected> {
        if n < 16 || n > self.max_app_dimension {
            return Err(Rejected::Malformed {
                reason: format!("app dimension {n} outside 16..={}", self.max_app_dimension),
            });
        }
        if let Some(plan) = self.app_plans.get(&(app, n, seed)) {
            return Ok(plan.clone());
        }
        let run = harness::run_app(
            &mut self.recorder,
            app,
            n,
            seed,
            ClosureAlgorithm::Leyzorek,
            true,
        );
        self.app_plans.insert((app, n, seed), run.plan.clone());
        Ok(run.plan)
    }

    /// Drains every tenant queue: each cycle visits tenants in
    /// registration order and executes up to `weight` jobs per tenant,
    /// so a weight-2 tenant drains twice as fast as a weight-1 tenant
    /// under contention. Returns the number of scheduling rounds
    /// executed (with resume disabled, exactly the number of jobs).
    /// Every admitted job lands one [`JobOutcome`] — deterministically,
    /// in scheduling order; suspended jobs re-enter the back of their
    /// tenant's queue and finish in a later cycle.
    pub fn run_until_idle(&mut self) -> usize {
        let mut executed = 0;
        loop {
            let mut progressed = false;
            for idx in 0..self.tenants.len() {
                let weight = self.tenants[idx].1.quota.weight.max(1);
                for _ in 0..weight {
                    let Some(job) = self.tenants[idx].1.queue.pop_front() else {
                        break;
                    };
                    self.execute(idx, job);
                    executed += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return executed;
            }
        }
    }

    /// Executes one scheduling round of `job`: either to a terminal
    /// status, or to a wave-boundary suspension that re-enqueues the
    /// job with its checkpoint.
    fn execute(&mut self, idx: usize, mut job: QueuedJob) {
        let tenant = self.tenants[idx].0;
        {
            let ledger = &mut self.tenants[idx].1.ledger;
            ledger.queued_steps -= job.steps;
            ledger.queued_bytes -= job.bytes;
        }
        self.queued_total -= 1;
        let total_steps = job.plan.step_count() as u64;
        let key = job.plan.cache_key();

        if self.breaker_config.armed() {
            if let Some(status) = self.breaker_gate(idx, job.id, key) {
                self.finish(idx, &job, key, 0, status, false);
                return;
            }
        }

        let resumed_round = job.checkpoint.is_some();
        if resumed_round {
            self.tenants[idx].1.stats.resumed += 1;
            self.emit_stage("resumed", tenant, Some(job.id));
        } else if let Some(output) = self.cache.get(&key) {
            let status = JobStatus::Completed {
                output,
                cache_hit: true,
                recovered: false,
                executed_steps: 0,
            };
            self.finish(idx, &job, key, 0, status, false);
            return;
        }

        let before = self.backend.recovery_stats();
        let dropped_before = self.backend.fault_log_dropped();
        let base = job
            .checkpoint
            .as_ref()
            .map_or(0, |c| c.completed_steps() as u64);
        let deadline = job.deadline;
        let quantum = self.resume_config.quantum;
        let mut control = |p: ReplayProgress| {
            let done = p.completed_steps as u64;
            let pending = p.pending_steps as u64;
            if !deadline.allows(done, pending) {
                return Err(format!(
                    "deadline: step budget {}",
                    deadline.budget().unwrap_or(0)
                ));
            }
            if quantum != 0 && done - base + pending > quantum {
                return Err(format!("quantum: round budget {quantum}"));
            }
            Ok(())
        };
        let executor = if self.batched {
            PlanExecutor::batched()
        } else {
            PlanExecutor::new()
        }
        .with_tracer(self.tracer.clone());
        let result = match job.checkpoint.take() {
            Some(cp) => executor.resume_from(&job.plan, cp, &mut self.backend, &mut control),
            None => executor.run_resumable(&job.plan, &mut self.backend, &mut control),
        };
        let after = self.backend.recovery_stats();
        self.tenants[idx].1.stats.fault_log_dropped +=
            self.backend.fault_log_dropped() - dropped_before;
        self.feed_degradation(tenant, job.id, &before, &after);

        match result {
            Ok(replay) => {
                let recovered = after.retry_successes != before.retry_successes
                    || after.panic_recoveries != before.panic_recoveries
                    || after.fallbacks != before.fallbacks;
                let output = replay
                    .into_final_output()
                    .expect("admitted plans are non-empty");
                self.cache.insert(key, output.clone());
                let status = JobStatus::Completed {
                    output,
                    cache_hit: false,
                    recovered,
                    executed_steps: total_steps,
                };
                self.finish(idx, &job, key, total_steps - base, status, true);
            }
            Err(halted) => self.finish_halted(idx, job, key, base, *halted),
        }
    }

    /// The pre-execution breaker gate: quarantine first, then the plan
    /// breaker, then the tenant breaker. Returns the terminal status
    /// that short-circuits the job, or `None` to let it execute.
    fn breaker_gate(&mut self, idx: usize, job_id: JobId, key: PlanKey) -> Option<JobStatus> {
        let cfg = self.breaker_config;
        let tenant = self.tenants[idx].0;
        if let Some(b) = self.plan_breakers.get(&key) {
            if b.quarantined(&cfg) {
                return Some(JobStatus::Quarantined {
                    key,
                    trips: b.trips(),
                });
            }
        }
        if !self.plan_breakers.entry(key).or_default().admit(&cfg) {
            self.tenants[idx].1.stats.breaker_short_circuits += 1;
            self.emit_stage("breaker_short_circuit", tenant, Some(job_id));
            return Some(JobStatus::Failed {
                step: 0,
                executed_steps: 0,
                error: format!("circuit breaker open for plan {key:?}"),
            });
        }
        if !self.tenants[idx].1.breaker.admit(&cfg) {
            self.tenants[idx].1.stats.breaker_short_circuits += 1;
            self.emit_stage("breaker_short_circuit", tenant, Some(job_id));
            return Some(JobStatus::Failed {
                step: 0,
                executed_steps: 0,
                error: format!("circuit breaker open for {tenant}"),
            });
        }
        None
    }

    /// Lands a halted round: a wave-boundary suspension (checkpoint
    /// kept, job re-enqueued) when the resume policy allows, otherwise
    /// a terminal expiry or failure carrying exact resume accounting.
    fn finish_halted(
        &mut self,
        idx: usize,
        job: QueuedJob,
        key: PlanKey,
        base: u64,
        halted: HaltedReplay,
    ) {
        let HaltedReplay { error, checkpoint } = halted;
        let done = checkpoint.completed_steps() as u64;
        let round_executed = done - base;
        let resumes = checkpoint.resumes();
        let total_steps = checkpoint.total_steps() as u64;
        let budget = job.deadline.budget();
        let resume_armed = self.resume_config.armed();
        let resumes_left = resumes < self.resume_config.max_resumes;
        if error.is_cancelled() {
            // Deadline or round-quantum halt at a step boundary. The
            // `round_executed > 0` guard keeps a quantum smaller than
            // the next dispatch from suspending forever.
            let budget_open = budget.is_none_or(|b| b > done);
            if resume_armed && budget_open && round_executed > 0 && resumes_left {
                self.suspend(idx, job, checkpoint, round_executed);
                return;
            }
            let status = JobStatus::Expired {
                executed_steps: done,
                budget: budget.unwrap_or(0),
                total_steps,
                resumed_from: resumes,
                checkpoint: resume_armed.then_some(key),
                resumable: resume_armed && budget_open,
            };
            self.finish(idx, &job, key, round_executed, status, true);
        } else {
            // A backend failure. Worker panics (surfaced because resume
            // arms `recover_panics = false`) suspend and retry in a
            // later round — the degradation ladder makes those retries
            // converge; everything else is terminal.
            let panicked = error
                .backend_error()
                .is_some_and(simd2::BackendError::is_worker_panic);
            if resume_armed && panicked && resumes_left {
                self.suspend(idx, job, checkpoint, round_executed);
                return;
            }
            let status = JobStatus::Failed {
                step: error.step,
                executed_steps: done,
                error: error
                    .backend_error()
                    .map(ToString::to_string)
                    .unwrap_or_default(),
            };
            self.finish(idx, &job, key, round_executed, status, true);
        }
    }

    /// Re-enqueues a halted job at the back of its tenant's queue with
    /// its checkpoint riding along: completed waves are never
    /// re-executed.
    fn suspend(
        &mut self,
        idx: usize,
        mut job: QueuedJob,
        checkpoint: PlanCheckpoint,
        round_executed: u64,
    ) {
        let tenant = self.tenants[idx].0;
        job.checkpoint = Some(checkpoint);
        {
            let state = &mut self.tenants[idx].1;
            state.stats.suspended += 1;
            state.stats.executed_steps += round_executed;
            state.ledger.queued_steps += job.steps;
            state.ledger.queued_bytes += job.bytes;
        }
        self.queued_total += 1;
        self.tracer.instant(
            span::SERVE,
            &[
                field("stage", "suspended"),
                field("tenant", tenant.0),
                field("job", job.id.0),
                field("executed_steps", round_executed),
            ],
        );
        self.tenants[idx].1.queue.push_back(job);
    }

    /// Lands a terminal status: stats, breaker recording (for statuses
    /// that actually `executed`), telemetry, ledger release, and the
    /// outcome record. The telemetry event carries this *round's*
    /// dispatched steps, so event sums stay equal to
    /// [`TenantStats::executed_steps`] across suspensions.
    fn finish(
        &mut self,
        idx: usize,
        job: &QueuedJob,
        key: PlanKey,
        round_executed: u64,
        status: JobStatus,
        executed: bool,
    ) {
        let tenant = self.tenants[idx].0;
        {
            let state = &mut self.tenants[idx].1;
            state.ledger.in_flight -= 1;
            state.stats.executed_steps += round_executed;
            match &status {
                JobStatus::Completed {
                    cache_hit,
                    recovered,
                    ..
                } => {
                    state.stats.completed += 1;
                    if *cache_hit {
                        state.stats.cache_hits += 1;
                    }
                    if *recovered {
                        state.stats.recovered += 1;
                    }
                }
                JobStatus::Expired { .. } => state.stats.expired += 1,
                JobStatus::Failed { .. } => state.stats.failed += 1,
                JobStatus::Quarantined { .. } => state.stats.quarantined += 1,
            }
        }
        if executed {
            self.record_breakers(idx, job.id, key, &status);
        }
        self.tracer.instant(
            span::SERVE,
            &[
                field("stage", status.label()),
                field("tenant", tenant.0),
                field("job", job.id.0),
                field("executed_steps", round_executed),
            ],
        );
        if let JobStatus::Completed {
            cache_hit,
            recovered,
            ..
        } = &status
        {
            if *cache_hit {
                self.emit_stage("cache_hit", tenant, Some(job.id));
            }
            if *recovered {
                self.emit_stage("recovered", tenant, Some(job.id));
            }
        }
        self.outcomes.push(JobOutcome {
            tenant,
            job: job.id,
            status,
        });
    }

    /// Feeds an executed job's terminal outcome to its tenant and plan
    /// breakers. Short-circuited and cache-hit jobs never reach here —
    /// they executed nothing. Expiry and suspension count as neither
    /// success nor failure.
    fn record_breakers(&mut self, idx: usize, job_id: JobId, key: PlanKey, status: &JobStatus) {
        if !self.breaker_config.armed() {
            return;
        }
        let cfg = self.breaker_config;
        let tenant = self.tenants[idx].0;
        match status {
            JobStatus::Completed { .. } => {
                self.tenants[idx].1.breaker.record_success();
                if let Some(b) = self.plan_breakers.get_mut(&key) {
                    b.record_success();
                }
            }
            JobStatus::Failed { .. } => {
                let mut trips = 0u64;
                if self.tenants[idx].1.breaker.record_failure(&cfg) {
                    trips += 1;
                }
                if self
                    .plan_breakers
                    .entry(key)
                    .or_default()
                    .record_failure(&cfg)
                {
                    trips += 1;
                }
                for _ in 0..trips {
                    self.tenants[idx].1.stats.breaker_trips += 1;
                    self.emit_stage("breaker_trip", tenant, Some(job_id));
                }
            }
            JobStatus::Expired { .. } | JobStatus::Quarantined { .. } => {}
        }
    }

    /// Advances the degradation ladder from one round's recovery-stat
    /// deltas: ABFT detections observed while a vector kernel tier is
    /// active pin the backend to the scalar kernel; worker panics
    /// demote parallel dispatch to sequential. Each rung fires at most
    /// once and emits a [`span::SERVE`] event.
    fn feed_degradation(
        &mut self,
        tenant: TenantId,
        job: JobId,
        before: &RecoveryStats,
        after: &RecoveryStats,
    ) {
        let cfg = self.degrade_config;
        if cfg.scalar_after_detections != 0
            && !self.degrade.scalar_pinned
            && self.backend.kernel_isa() != KernelIsa::Scalar
        {
            self.degrade.vector_detections += after.detections - before.detections;
            if self.degrade.vector_detections >= cfg.scalar_after_detections
                && self.backend.pin_kernel_isa(KernelIsa::Scalar)
            {
                self.degrade.scalar_pinned = true;
                self.emit_stage("degraded_scalar", tenant, Some(job));
            }
        }
        if cfg.sequential_after_panics != 0 && !self.degrade.sequential {
            self.degrade.panic_strikes += after.worker_panics - before.worker_panics;
            if self.degrade.panic_strikes >= cfg.sequential_after_panics
                && self.backend.force_sequential()
            {
                self.degrade.sequential = true;
                self.emit_stage("degraded_sequential", tenant, Some(job));
            }
        }
    }

    /// Drains the accumulated terminal outcomes, in execution order.
    pub fn take_outcomes(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// A tenant's outcome counters (`None` if unregistered).
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenant_index(tenant).map(|i| self.tenants[i].1.stats)
    }

    /// A tenant's live admission ledger (`None` if unregistered).
    pub fn tenant_ledger(&self, tenant: TenantId) -> Option<TenantLedger> {
        self.tenant_index(tenant).map(|i| self.tenants[i].1.ledger)
    }

    /// Jobs currently queued across all tenants.
    pub fn queued_jobs(&self) -> usize {
        self.queued_total
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared recovery layer's counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.backend.recovery_stats()
    }

    /// The resilient execution backend (e.g. to inspect the wrapped
    /// inner backend).
    pub fn resilient(&self) -> &ResilientBackend<B> {
        &self.backend
    }

    /// Mutable access to the resilient execution backend (e.g. to
    /// install fault injectors in chaos tests).
    pub fn resilient_mut(&mut self) -> &mut ResilientBackend<B> {
        &mut self.backend
    }

    /// A tenant's circuit breaker (`None` if unregistered).
    pub fn tenant_breaker(&self, tenant: TenantId) -> Option<Breaker> {
        self.tenant_index(tenant).map(|i| self.tenants[i].1.breaker)
    }

    /// A plan's circuit breaker (`None` until the plan first executes
    /// with breakers armed).
    pub fn plan_breaker(&self, key: PlanKey) -> Option<Breaker> {
        self.plan_breakers.get(&key).copied()
    }

    /// Whether `key`'s plan has tripped its breaker into quarantine.
    pub fn plan_quarantined(&self, key: PlanKey) -> bool {
        self.plan_breakers
            .get(&key)
            .is_some_and(|b| b.quarantined(&self.breaker_config))
    }

    /// The degradation ladder's current state.
    pub fn degrade_state(&self) -> DegradeState {
        self.degrade
    }

    /// Fault-injector log entries dropped by ring-buffer overflow on
    /// the shared backend (`0` when no injector is installed).
    pub fn fault_log_dropped(&self) -> u64 {
        self.backend.fault_log_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::{Parallelism, PlanBuilder};
    use simd2_fault::PanicProbeUnit;
    use simd2_matrix::Matrix;
    use simd2_mxu::Simd2Unit;
    use simd2_semiring::OpKind;
    use simd2_trace::RingSink;

    /// Records a `len`-step min-plus chain over `side`-square inputs
    /// filled with `fill` (distinct fills → distinct cache keys).
    fn chain_plan(len: usize, side: usize, fill: f32) -> Plan {
        let a = Matrix::from_fn(side, side, |r, c| fill + (r * side + c) as f32);
        let c = Matrix::filled(side, side, f32::INFINITY);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let mut cur = rec.mmo(OpKind::MinPlus, &a, &a, &c).unwrap();
        for _ in 1..len {
            cur = rec.mmo(OpKind::MinPlus, &cur, &a, &c).unwrap();
        }
        rec.finish()
    }

    /// The sequential clean-replay oracle every completed job must
    /// match bit-for-bit.
    fn clean_output(plan: &Plan) -> Matrix {
        PlanExecutor::new()
            .run(plan, &mut TiledBackend::new())
            .unwrap()
            .into_final_output()
            .unwrap()
    }

    fn assert_bit_identical(got: &Matrix, want: &Matrix) {
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "outputs diverge");
        }
    }

    fn service() -> PlanService<TiledBackend> {
        PlanService::new(TiledBackend::new(), ServeConfig::default())
    }

    #[test]
    fn unknown_tenants_are_rejected_as_malformed() {
        let mut svc = service();
        let err = svc
            .submit(TenantId(9), JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap_err();
        assert!(matches!(err, Rejected::Malformed { .. }));
        assert!(svc.tenant_stats(TenantId(9)).is_none());
    }

    #[test]
    fn completed_jobs_are_bit_identical_to_a_clean_sequential_replay() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 1.0);
        let want = clean_output(&plan);
        let id = svc.submit(t, JobSpec::plan(plan)).unwrap();
        assert_eq!(svc.run_until_idle(), 1);
        let outcomes = svc.take_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].job, id);
        let JobStatus::Completed {
            output,
            cache_hit,
            recovered,
            executed_steps,
        } = &outcomes[0].status
        else {
            panic!("expected completion, got {:?}", outcomes[0].status);
        };
        assert!(!cache_hit);
        assert!(!recovered);
        assert_eq!(*executed_steps, 3);
        assert_bit_identical(output, &want);
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!(
            (stats.submitted, stats.admitted, stats.completed),
            (1, 1, 1)
        );
        assert_eq!(stats.executed_steps, 3);
        assert_eq!(svc.tenant_ledger(t).unwrap(), TenantLedger::default());
    }

    #[test]
    fn tenant_quotas_reject_with_explicit_responses() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default().with_max_in_flight(1));
        svc.submit(t, JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap();
        let err = svc
            .submit(t, JobSpec::plan(chain_plan(1, 16, 1.0)))
            .unwrap_err();
        assert!(matches!(
            err,
            Rejected::QuotaExceeded {
                quota: "in_flight_jobs",
                ..
            }
        ));
        assert_eq!(svc.tenant_stats(t).unwrap().rejected_quota, 1);
        // Draining the queue frees the quota.
        svc.run_until_idle();
        assert!(svc.submit(t, JobSpec::plan(chain_plan(1, 16, 1.0))).is_ok());
    }

    #[test]
    fn service_wide_backpressure_spills_over_to_other_tenants() {
        let config = ServeConfig {
            max_queued_jobs: 1,
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default());
        svc.register_tenant(t1, TenantQuota::default());
        svc.submit(t0, JobSpec::plan(chain_plan(1, 16, 0.0)))
            .unwrap();
        let err = svc
            .submit(t1, JobSpec::plan(chain_plan(1, 16, 1.0)))
            .unwrap_err();
        assert!(matches!(
            err,
            Rejected::Backpressure {
                queued: 1,
                capacity: 1
            }
        ));
        assert_eq!(svc.tenant_stats(t1).unwrap().rejected_backpressure, 1);
    }

    #[test]
    fn weighted_round_robin_drains_in_registration_order_by_weight() {
        let mut svc = service();
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default().with_weight(2));
        svc.register_tenant(t1, TenantQuota::default().with_weight(1));
        for i in 0..4 {
            svc.submit(t0, JobSpec::plan(chain_plan(1, 16, i as f32)))
                .unwrap();
        }
        for i in 0..2 {
            svc.submit(t1, JobSpec::plan(chain_plan(1, 16, 100.0 + i as f32)))
                .unwrap();
        }
        assert_eq!(svc.run_until_idle(), 6);
        let order: Vec<TenantId> = svc.take_outcomes().iter().map(|o| o.tenant).collect();
        assert_eq!(order, vec![t0, t0, t1, t0, t0, t1]);
    }

    #[test]
    fn deadlines_expire_at_step_boundaries_with_exact_accounting() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 2.0);
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(1)),
        )
        .unwrap();
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(0)),
        )
        .unwrap();
        svc.submit(
            t,
            JobSpec::plan(plan.clone()).with_deadline(Deadline::Steps(3)),
        )
        .unwrap();
        assert_eq!(svc.run_until_idle(), 3);
        let outcomes = svc.take_outcomes();
        // With resume disabled, expiry is terminal: no checkpoint, no
        // resumability, zero resumes.
        assert!(matches!(
            outcomes[0].status,
            JobStatus::Expired {
                executed_steps: 1,
                budget: 1,
                total_steps: 3,
                resumed_from: 0,
                checkpoint: None,
                resumable: false,
            }
        ));
        assert_eq!(outcomes[0].status.remaining_budget(), Some(0));
        assert!(matches!(
            outcomes[1].status,
            JobStatus::Expired {
                executed_steps: 0,
                budget: 0,
                total_steps: 3,
                resumed_from: 0,
                checkpoint: None,
                resumable: false,
            }
        ));
        assert!(matches!(
            &outcomes[2].status,
            JobStatus::Completed {
                executed_steps: 3,
                ..
            }
        ));
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.expired, stats.completed), (2, 1));
        // 1 step from the first job, 0 from the second, 3 from the
        // third. The expired jobs' partial work is still accounted.
        assert_eq!(stats.executed_steps, 4);
    }

    #[test]
    fn structurally_identical_resubmission_hits_the_cache_bit_identically() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        // Recorded independently: equal cache keys come from content,
        // not object identity.
        svc.submit(t, JobSpec::plan(chain_plan(2, 16, 3.0)))
            .unwrap();
        svc.submit(t, JobSpec::plan(chain_plan(2, 16, 3.0)))
            .unwrap();
        // A deadline too tight to run even one step: the cache hit
        // bypasses execution entirely, so it still completes.
        svc.submit(
            t,
            JobSpec::plan(chain_plan(2, 16, 3.0)).with_deadline(Deadline::Steps(0)),
        )
        .unwrap();
        assert_eq!(svc.run_until_idle(), 3);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed { output: cold, .. } = &outcomes[0].status else {
            panic!("cold run should complete");
        };
        for outcome in &outcomes[1..] {
            let JobStatus::Completed {
                output,
                cache_hit,
                executed_steps,
                ..
            } = &outcome.status
            else {
                panic!("cache hit should complete, got {:?}", outcome.status);
            };
            assert!(cache_hit);
            assert_eq!(*executed_steps, 0);
            assert_bit_identical(output, cold);
        }
        let cache = svc.cache_stats();
        assert_eq!((cache.hits, cache.misses, cache.entries), (2, 1, 1));
        assert_eq!(svc.tenant_stats(t).unwrap().cache_hits, 2);
    }

    #[test]
    fn app_payloads_expand_at_admission_and_cache_across_submissions() {
        let mut svc = service();
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        svc.submit(t, JobSpec::app(AppKind::Apsp, 32, 7)).unwrap();
        svc.submit(t, JobSpec::app(AppKind::Apsp, 32, 7)).unwrap();
        let err = svc
            .submit(t, JobSpec::app(AppKind::Apsp, 100_000, 7))
            .unwrap_err();
        assert!(matches!(err, Rejected::Malformed { .. }));
        assert_eq!(svc.run_until_idle(), 2);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed {
            output: cold,
            cache_hit: false,
            ..
        } = &outcomes[0].status
        else {
            panic!("app job should complete cold");
        };
        let JobStatus::Completed {
            output: warm,
            cache_hit: true,
            ..
        } = &outcomes[1].status
        else {
            panic!("identical app job should hit the cache");
        };
        assert_bit_identical(warm, cold);
    }

    #[test]
    fn a_poisoned_tenant_stays_deterministic_and_neighbours_stay_clean() {
        // NaN inputs are *legitimate* to ABFT (NaN-in → NaN-out): the
        // poisoned job completes, deterministically, with its own
        // clean-replay bits — and the poison never leaks into another
        // tenant's outputs through the shared backend.
        let mut svc = service();
        let (bad, good) = (TenantId(0), TenantId(1));
        svc.register_tenant(bad, TenantQuota::default());
        svc.register_tenant(good, TenantQuota::default());

        let mut poisoned = Matrix::filled(16, 16, 1.0);
        poisoned.as_mut_slice()[7] = f32::NAN;
        let zero = Matrix::filled(16, 16, 0.0);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(OpKind::PlusMul, &poisoned, &poisoned, &zero)
            .unwrap();
        let bad_plan = rec.finish();
        let want_bad = clean_output(&bad_plan);
        assert!(want_bad.as_slice().iter().any(|v| v.is_nan()));

        let good_plan = chain_plan(2, 16, 5.0);
        let want_good = clean_output(&good_plan);
        svc.submit(bad, JobSpec::plan(bad_plan)).unwrap();
        svc.submit(good, JobSpec::plan(good_plan)).unwrap();
        assert_eq!(svc.run_until_idle(), 2);

        for outcome in svc.take_outcomes() {
            let JobStatus::Completed { output, .. } = outcome.status else {
                panic!("both jobs complete, got {:?}", outcome.status);
            };
            if outcome.tenant == bad {
                assert_bit_identical(&output, &want_bad);
            } else {
                assert!(output.as_slice().iter().all(|v| !v.is_nan()));
                assert_bit_identical(&output, &want_good);
            }
        }
    }

    #[test]
    fn exhausted_recovery_surfaces_an_explicit_failure_with_step_index() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        // Full-rate persistent faults: every attempt is detected, the
        // retry policy exhausts, and the job fails explicitly — with
        // the failing step attributed.
        let plan = FaultPlan::new(FaultPlanConfig::new(5).with_transient_nan_ppm(1_000_000));
        let inner = TiledBackend::with_unit(FaultySimd2Unit::new(
            Simd2Unit::new(),
            PlannedInjector::new(plan),
        ));
        let config = ServeConfig {
            policy: RecoveryPolicy::Retry { attempts: 2 },
            abft: AbftConfig {
                witness_samples: usize::MAX,
                ..AbftConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(inner, config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());

        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let a = Matrix::filled(16, 16, 1.0);
        let zero = Matrix::filled(16, 16, 0.0);
        rec.mmo(OpKind::PlusMul, &a, &a, &zero).unwrap();
        let doomed = rec.finish();

        svc.submit(t, JobSpec::plan(doomed)).unwrap();
        assert_eq!(svc.run_until_idle(), 1);
        let outcomes = svc.take_outcomes();
        let JobStatus::Failed {
            step,
            executed_steps,
            error,
        } = &outcomes[0].status
        else {
            panic!("doomed job must fail, got {:?}", outcomes[0].status);
        };
        assert_eq!(*step, 0);
        assert_eq!(*executed_steps, 0);
        assert!(!error.is_empty());
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.failed, stats.completed), (1, 0));
        let recovery = svc.recovery_stats();
        assert!(recovery.detections >= 3, "initial try + 2 retries detected");
        assert_eq!(recovery.retries, 2);
    }

    #[test]
    fn a_panicking_tenant_recovers_without_touching_neighbours() {
        // Worker shards panic at tile row 1: only tenant 0's 48-row
        // jobs strike it; tenant 1's single-tile jobs never do.
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
        inner.set_parallelism(Parallelism::Threads(3));
        let mut svc = PlanService::new(inner, ServeConfig::default());
        let (chaos, calm) = (TenantId(0), TenantId(1));
        svc.register_tenant(chaos, TenantQuota::default());
        svc.register_tenant(calm, TenantQuota::default());

        let tall = chain_plan(2, 48, 1.0);
        let small = chain_plan(2, 16, 2.0);
        let want_tall = clean_output(&tall);
        let want_small = clean_output(&small);
        svc.submit(chaos, JobSpec::plan(tall)).unwrap();
        svc.submit(calm, JobSpec::plan(small)).unwrap();
        assert_eq!(svc.run_until_idle(), 2);

        let outcomes = svc.take_outcomes();
        for outcome in &outcomes {
            let JobStatus::Completed {
                output, recovered, ..
            } = &outcome.status
            else {
                panic!("both tenants must complete, got {:?}", outcome.status);
            };
            if outcome.tenant == chaos {
                assert!(recovered, "panicked job recovers sequentially");
                assert_bit_identical(output, &want_tall);
            } else {
                assert!(!recovered, "calm tenant untouched by the panic");
                assert_bit_identical(output, &want_small);
            }
        }
        assert_eq!(svc.tenant_stats(chaos).unwrap().recovered, 1);
        assert_eq!(svc.tenant_stats(calm).unwrap().recovered, 0);
        assert!(svc.recovery_stats().panic_recoveries >= 1);
    }

    #[test]
    fn suspended_jobs_resume_bit_identically_without_reexecuting_waves() {
        let config = ServeConfig {
            resume: ResumeConfig {
                quantum: 1,
                max_resumes: 8,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 9.0);
        let want = clean_output(&plan);
        svc.submit(t, JobSpec::plan(plan)).unwrap();
        // One job, quantum 1: three rounds (run, resume, resume).
        assert_eq!(svc.run_until_idle(), 3);
        let outcomes = svc.take_outcomes();
        assert_eq!(outcomes.len(), 1, "suspensions land no outcome");
        let JobStatus::Completed {
            output,
            executed_steps,
            recovered,
            cache_hit,
        } = &outcomes[0].status
        else {
            panic!("resumed job must complete, got {:?}", outcomes[0].status);
        };
        assert!(!recovered && !cache_hit);
        assert_eq!(*executed_steps, 3);
        assert_bit_identical(output, &want);
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.suspended, stats.resumed), (2, 2));
        assert_eq!(stats.executed_steps, 3, "each step counted exactly once");
        // Counter-verified: completed waves were never re-dispatched.
        assert_eq!(Backend::op_count(svc.resilient()).matrix_mmos, 3);
        assert_eq!(svc.tenant_ledger(t).unwrap(), TenantLedger::default());
    }

    #[test]
    fn deadline_budget_spreads_across_resumed_rounds_with_exact_accounting() {
        let config = ServeConfig {
            resume: ResumeConfig {
                quantum: 1,
                max_resumes: 8,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(3, 16, 10.0);
        let key = plan.cache_key();
        svc.submit(t, JobSpec::plan(plan).with_deadline(Deadline::Steps(2)))
            .unwrap();
        svc.run_until_idle();
        let outcomes = svc.take_outcomes();
        // Two one-step rounds spend the budget of 2; the third step
        // would exceed it: terminal expiry, budget genuinely spent.
        let JobStatus::Expired {
            executed_steps,
            budget,
            total_steps,
            resumed_from,
            checkpoint,
            resumable,
        } = &outcomes[0].status
        else {
            panic!("expected expiry, got {:?}", outcomes[0].status);
        };
        assert_eq!(
            (*executed_steps, *budget, *total_steps, *resumed_from),
            (2, 2, 3, 1)
        );
        assert_eq!(*checkpoint, Some(key));
        assert!(!resumable, "budget exhausted: expired, terminal");
        assert_eq!(outcomes[0].status.remaining_budget(), Some(0));
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.suspended, stats.resumed, stats.expired), (1, 1, 1));
        assert_eq!(stats.executed_steps, 2);
    }

    #[test]
    fn resume_cap_expires_with_open_budget_as_resumable() {
        // quantum 1 over a 4-step plan with max_resumes 1: round 0
        // suspends, round 1 (the only allowed resume) halts again with
        // budget math still open — expired, resumable.
        let config = ServeConfig {
            resume: ResumeConfig {
                quantum: 1,
                max_resumes: 1,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan = chain_plan(4, 16, 11.0);
        let key = plan.cache_key();
        svc.submit(t, JobSpec::plan(plan)).unwrap();
        svc.run_until_idle();
        let outcomes = svc.take_outcomes();
        let JobStatus::Expired {
            executed_steps,
            total_steps,
            resumed_from,
            checkpoint,
            resumable,
            ..
        } = &outcomes[0].status
        else {
            panic!("expected expiry, got {:?}", outcomes[0].status);
        };
        assert_eq!((*executed_steps, *total_steps, *resumed_from), (2, 4, 1));
        assert_eq!(*checkpoint, Some(key));
        assert!(resumable, "resume cap, not budget: expired, resumable");
    }

    #[test]
    fn worker_panics_checkpoint_and_the_ladder_demotes_to_sequential() {
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
        inner.set_parallelism(Parallelism::Threads(3));
        let config = ServeConfig {
            resume: ResumeConfig {
                quantum: 0,
                max_resumes: 4,
            },
            degrade: DegradeConfig {
                scalar_after_detections: 0,
                sequential_after_panics: 2,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(inner, config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let tall = chain_plan(2, 48, 12.0);
        let want = clean_output(&tall);
        svc.submit(t, JobSpec::plan(tall)).unwrap();
        svc.run_until_idle();
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed { output, .. } = &outcomes[0].status else {
            panic!(
                "panicked job must complete after demotion, got {:?}",
                outcomes[0].status
            );
        };
        assert_bit_identical(output, &want);
        // Two panic rounds strike the sequential rung, then the
        // demoted resume finishes the plan.
        let degrade = svc.degrade_state();
        assert!(degrade.sequential);
        assert_eq!(degrade.panic_strikes, 2);
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!((stats.suspended, stats.resumed), (2, 2));
        assert_eq!(stats.executed_steps, 2);
        let recovery = svc.recovery_stats();
        assert_eq!(recovery.worker_panics, 2);
        assert_eq!(
            recovery.panic_recoveries, 0,
            "resume owns panic handling: no in-place sequential recovery"
        );
    }

    #[test]
    fn persistent_failures_trip_breakers_and_quarantine_the_plan() {
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        // Full-rate persistent faults doom every execution.
        let fault = FaultPlan::new(FaultPlanConfig::new(5).with_transient_nan_ppm(1_000_000));
        let inner = TiledBackend::with_unit(FaultySimd2Unit::new(
            Simd2Unit::new(),
            PlannedInjector::new(fault),
        ));
        let config = ServeConfig {
            policy: RecoveryPolicy::Retry { attempts: 2 },
            abft: AbftConfig {
                witness_samples: usize::MAX,
                ..AbftConfig::default()
            },
            breaker: crate::BreakerConfig {
                trip_after: 2,
                cooldown: 1,
                quarantine_after: 2,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(inner, config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let doomed = chain_plan(1, 16, 13.0);
        let key = doomed.cache_key();
        for _ in 0..6 {
            svc.submit(t, JobSpec::plan(doomed.clone())).unwrap();
        }
        svc.run_until_idle();
        let outcomes = svc.take_outcomes();
        let labels: Vec<&str> = outcomes.iter().map(|o| o.status.label()).collect();
        // 2 real failures trip both breakers; the plan breaker then the
        // tenant breaker each absorb one short-circuit (cooldown 1);
        // the half-open probe fails, re-tripping both — the plan's 2nd
        // trip quarantines it.
        assert_eq!(
            labels,
            vec![
                "failed",
                "failed",
                "failed",
                "failed",
                "failed",
                "quarantined"
            ]
        );
        let short_circuit = |s: &JobStatus| match s {
            JobStatus::Failed { error, .. } => error.contains("circuit breaker open"),
            _ => false,
        };
        assert!(!short_circuit(&outcomes[0].status));
        assert!(!short_circuit(&outcomes[1].status));
        assert!(short_circuit(&outcomes[2].status), "plan breaker open");
        assert!(short_circuit(&outcomes[3].status), "tenant breaker open");
        assert!(!short_circuit(&outcomes[4].status), "half-open probe ran");
        assert!(matches!(
            outcomes[5].status,
            JobStatus::Quarantined { trips: 2, key: k } if k == key
        ));
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!(stats.failed, 5);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.breaker_short_circuits, 2);
        assert_eq!(stats.breaker_trips, 4, "two trips on each breaker");
        assert_eq!(stats.terminal(), 6);
        assert!(svc.plan_quarantined(key));
        assert_eq!(svc.plan_breaker(key).unwrap().trips(), 2);
        assert_eq!(svc.tenant_breaker(t).unwrap().trips(), 2);
    }

    #[test]
    fn repeated_detections_pin_the_kernel_to_scalar_on_vector_hosts() {
        use simd2_fault::MmoUnit;
        use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
        use simd2_semiring::simd::KernelIsa;
        // Vector-tier-only injection: every attempt is corrupted while
        // a vector kernel runs, and the injector disarms the moment the
        // ladder pins the scalar kernel.
        let fault = FaultPlan::new(FaultPlanConfig::new(7).with_transient_nan_ppm(1_000_000));
        let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(fault))
            .with_vector_only(true);
        let vector_host = unit.kernel_isa() != KernelIsa::Scalar;
        let inner = TiledBackend::with_unit(unit);
        let config = ServeConfig {
            policy: RecoveryPolicy::Retry { attempts: 2 },
            abft: AbftConfig {
                witness_samples: usize::MAX,
                ..AbftConfig::default()
            },
            degrade: DegradeConfig {
                scalar_after_detections: 1,
                sequential_after_panics: 0,
            },
            ..ServeConfig::default()
        };
        let mut svc = PlanService::new(inner, config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        let plan_a = chain_plan(1, 16, 14.0);
        let plan_b = chain_plan(1, 16, 15.0);
        let want_b = clean_output(&plan_b);
        svc.submit(t, JobSpec::plan(plan_a)).unwrap();
        svc.submit(t, JobSpec::plan(plan_b)).unwrap();
        svc.run_until_idle();
        let outcomes = svc.take_outcomes();
        let detections = svc.recovery_stats().detections;
        if vector_host {
            // Job 1 fails under full-rate vector corruption; its
            // detections fire the scalar rung, so job 2 runs clean on
            // the pinned scalar kernel.
            assert_eq!(outcomes[0].status.label(), "failed");
            assert!(svc.degrade_state().scalar_pinned);
            assert!(detections >= 1);
            assert_eq!(
                Backend::kernel_isa(svc.resilient()),
                KernelIsa::Scalar,
                "backend pinned to the scalar kernel"
            );
        } else {
            // Scalar host (e.g. SIMD2_FORCE_SCALAR=1): the vector-only
            // injector never arms, nothing degrades.
            assert_eq!(outcomes[0].status.label(), "completed");
            assert!(!svc.degrade_state().scalar_pinned);
            assert_eq!(detections, 0);
        }
        let JobStatus::Completed {
            output, recovered, ..
        } = &outcomes[1].status
        else {
            panic!(
                "job after the pin must complete, got {:?}",
                outcomes[1].status
            );
        };
        assert!(!recovered, "no retries needed once disarmed");
        assert_bit_identical(output, &want_b);
    }

    #[test]
    fn streaming_app_jobs_serve_sparse_plans_end_to_end() {
        use simd2::solve::ClosureAlgorithm;
        use simd2_sparse::SparseTiledBackend;
        // The full sparse-serving path in one pass: a streaming-update
        // registry app expands at admission into a plan with
        // CSR-declared delta slots, survives the serving pass pipeline,
        // suspends/resumes at wave boundaries under a round quantum,
        // replays its sparse steps through SparseTiledBackend's CSR
        // kernels on a sharded worker pool — and still lands bits
        // identical to a clean sequential dense replay.
        let sink = RingSink::shared();
        let config = ServeConfig {
            batched: true,
            optimize_plans: true,
            resume: ResumeConfig {
                quantum: 4,
                max_resumes: 16,
            },
            ..ServeConfig::default()
        };
        let inner = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(4));
        let mut svc = PlanService::new(inner, config).with_tracer(Tracer::to(sink.clone()));
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());

        let mut wants = HashMap::new();
        for app in AppKind::streaming() {
            // The admission expansion is deterministic per (app, n,
            // seed): recompute it here for the clean-replay oracle.
            let run = harness::run_app(
                &mut TiledBackend::new(),
                app,
                32,
                7,
                ClosureAlgorithm::Leyzorek,
                true,
            );
            assert!(run.passed(), "{app:?}: diff {}", run.diff);
            assert!(run.plan.has_sparse_slots(), "{app:?}");
            let id = svc.submit(t, JobSpec::app(app, 32, 7)).unwrap();
            wants.insert(id, clean_output(&run.plan));
        }
        svc.run_until_idle();

        let outcomes = svc.take_outcomes();
        assert_eq!(outcomes.len(), 2);
        // Suspensions reorder completion, so match oracles by job id.
        for outcome in &outcomes {
            let want = &wants[&outcome.job];
            let JobStatus::Completed {
                output, cache_hit, ..
            } = &outcome.status
            else {
                panic!("streaming job must complete, got {:?}", outcome.status);
            };
            assert!(!cache_hit);
            assert_bit_identical(output, want);
        }
        // The sparse kernels genuinely executed on the shared backend.
        let counts = svc.resilient().inner().sparse_count();
        assert!(counts.sparse_mmos > 0, "{counts:?}");
        assert!(counts.skipped_terms > 0, "{counts:?}");
        // Per-tenant telemetry: the quantum forced suspensions, every
        // counter mirrors its SERVE event stream exactly.
        let stats = svc.tenant_stats(t).unwrap();
        assert_eq!(stats.completed, 2);
        assert!(stats.suspended > 0 && stats.suspended == stats.resumed);
        assert!(stats.executed_steps > 0);
        let count = |stage: &str| -> u64 {
            sink.events()
                .iter()
                .filter(|e| e.is_stage(span::SERVE, stage))
                .filter(|e| e.u64("tenant") == Some(t.0 as u64))
                .count() as u64
        };
        assert_eq!(count("completed"), stats.completed);
        assert_eq!(count("suspended"), stats.suspended);
        assert_eq!(count("resumed"), stats.resumed);
        let executed: u64 = sink
            .events()
            .iter()
            .filter(|e| {
                (e.is_stage(span::SERVE, "completed") || e.is_stage(span::SERVE, "suspended"))
                    && e.u64("tenant") == Some(t.0 as u64)
            })
            .filter_map(|e| e.u64("executed_steps"))
            .sum();
        assert_eq!(executed, stats.executed_steps);
    }

    #[test]
    fn telemetry_events_mirror_tenant_stats_exactly() {
        let sink = RingSink::shared();
        let mut svc = service().with_tracer(Tracer::to(sink.clone()));
        let (t0, t1) = (TenantId(0), TenantId(1));
        svc.register_tenant(t0, TenantQuota::default().with_max_in_flight(2));
        svc.register_tenant(t1, TenantQuota::default());

        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 0.0)))
            .unwrap();
        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 0.0)))
            .unwrap();
        // Third submission trips t0's in-flight quota.
        svc.submit(t0, JobSpec::plan(chain_plan(2, 16, 1.0)))
            .unwrap_err();
        svc.submit(
            t1,
            JobSpec::plan(chain_plan(3, 16, 2.0)).with_deadline(Deadline::Steps(1)),
        )
        .unwrap();
        // Empty plan: malformed.
        let empty = PlanBuilder::over(&mut TiledBackend::new()).finish();
        svc.submit(t1, JobSpec::plan(empty)).unwrap_err();
        svc.run_until_idle();

        for tenant in [t0, t1] {
            let stats = svc.tenant_stats(tenant).unwrap();
            let count = |stage: &str| -> u64 {
                sink.events()
                    .iter()
                    .filter(|e| e.is_stage(span::SERVE, stage))
                    .filter(|e| e.u64("tenant") == Some(tenant.0 as u64))
                    .count() as u64
            };
            assert_eq!(count("submitted"), stats.submitted);
            assert_eq!(count("admitted"), stats.admitted);
            assert_eq!(count("rejected_backpressure"), stats.rejected_backpressure);
            assert_eq!(count("rejected_quota"), stats.rejected_quota);
            assert_eq!(count("rejected_malformed"), stats.rejected_malformed);
            assert_eq!(count("completed"), stats.completed);
            assert_eq!(count("expired"), stats.expired);
            assert_eq!(count("failed"), stats.failed);
            assert_eq!(count("cache_hit"), stats.cache_hits);
            assert_eq!(count("recovered"), stats.recovered);
            let executed: u64 = sink
                .events()
                .iter()
                .filter(|e| {
                    (e.is_stage(span::SERVE, "completed")
                        || e.is_stage(span::SERVE, "expired")
                        || e.is_stage(span::SERVE, "failed"))
                        && e.u64("tenant") == Some(tenant.0 as u64)
                })
                .filter_map(|e| e.u64("executed_steps"))
                .sum();
            assert_eq!(executed, stats.executed_steps);
        }
    }
}
