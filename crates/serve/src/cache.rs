//! Result cache keyed on [`PlanKey`] — structural hash plus input
//! fingerprint.
//!
//! Soundness argument: replay is deterministic, and a [`PlanKey`]
//! covers the full step structure *and* every captured input's exact
//! bits ([`Plan::cache_key`](simd2::Plan::cache_key)). Equal keys
//! therefore mean bit-identical replays on the same backend
//! configuration, so serving the cached output *is* the replay. Any
//! single-bit input perturbation moves the fingerprint and misses —
//! pinned by this crate's `proptest_cache` suite.

use std::collections::{HashMap, VecDeque};

use simd2::PlanKey;
use simd2_matrix::Matrix;

/// Aggregate cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached output.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded FIFO map from [`PlanKey`] to a completed replay's final
/// output. Eviction is insertion-order (oldest first) — deterministic,
/// which the seeded soak relies on when it mirrors cache behaviour.
#[derive(Clone, Debug)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, Matrix>,
    order: VecDeque<PlanKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// A cache holding up to `capacity` outputs; `0` disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&mut self, key: &PlanKey) -> Option<Matrix> {
        if self.capacity == 0 {
            return None;
        }
        match self.map.get(key) {
            Some(m) => {
                self.hits += 1;
                Some(m.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a completed replay's output, evicting the oldest entry
    /// if at capacity. Re-inserting an existing key refreshes nothing
    /// (the value is necessarily identical — see the module docs).
    pub fn insert(&mut self, key: PlanKey, output: Matrix) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, output);
        self.order.push_back(key);
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> PlanKey {
        PlanKey {
            structural: n,
            inputs: n.wrapping_mul(31),
        }
    }

    #[test]
    fn fifo_eviction_is_oldest_first() {
        let mut cache = PlanCache::new(2);
        assert!(cache.enabled());
        cache.insert(key(1), Matrix::filled(1, 1, 1.0));
        cache.insert(key(2), Matrix::filled(1, 1, 2.0));
        cache.insert(key(3), Matrix::filled(1, 1, 3.0));
        assert!(cache.get(&key(1)).is_none(), "oldest entry evicted");
        assert_eq!(cache.get(&key(2)).unwrap().as_slice()[0], 2.0);
        assert_eq!(cache.get(&key(3)).unwrap().as_slice()[0], 3.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (2, 1, 1, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PlanCache::new(0);
        assert!(!cache.enabled());
        cache.insert(key(1), Matrix::filled(1, 1, 1.0));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), Matrix::filled(1, 1, 1.0));
        cache.insert(key(1), Matrix::filled(1, 1, 9.0));
        assert_eq!(cache.get(&key(1)).unwrap().as_slice()[0], 1.0);
        assert_eq!(cache.stats().entries, 1);
    }
}
