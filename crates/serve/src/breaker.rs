//! Deterministic, count-based circuit breakers.
//!
//! The service keeps one [`Breaker`] per tenant and one per plan
//! ([`PlanKey`](simd2::PlanKey)). A breaker is a three-state machine —
//! closed → open → half-open — driven purely by the terminal outcomes
//! the scheduler observes, with no wall-clock input: cooldown is
//! measured in *refused requests*, so a chaos episode replays the exact
//! same transition sequence from the same seed.
//!
//! * **Closed**: requests pass. [`BreakerConfig::trip_after`]
//!   consecutive terminal failures trip the breaker open (a success
//!   resets the streak; expiry and suspension count as neither).
//! * **Open**: requests are refused without executing — the scheduler
//!   lands them as terminal failures and counts them as
//!   short-circuits. Each refusal consumes one cooldown unit; after
//!   [`BreakerConfig::cooldown`] refusals the breaker moves to
//!   half-open.
//! * **Half-open**: exactly one probe request passes. Success closes
//!   the breaker; failure re-trips it open (another full cooldown).
//!
//! A *plan* whose breaker trips [`BreakerConfig::quarantine_after`]
//! times is a repeat offender: the scheduler lands every further
//! submission of it as [`JobStatus::Quarantined`](crate::JobStatus)
//! without consulting the breaker again.

/// Thresholds for the per-tenant and per-plan circuit breakers.
///
/// The default (`trip_after: 0`) disables breakers entirely — the
/// service behaves exactly as if this module did not exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that trip a closed breaker open
    /// (`0` disables breakers).
    pub trip_after: u32,
    /// Refused requests an open breaker absorbs before offering a
    /// half-open probe (`0` re-probes immediately on the next request).
    pub cooldown: u32,
    /// Trips after which a *plan* is quarantined permanently
    /// (`0` = never quarantine).
    pub quarantine_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 0,
            cooldown: 2,
            quarantine_after: 0,
        }
    }
}

impl BreakerConfig {
    /// Whether breakers are armed at all.
    pub fn armed(&self) -> bool {
        self.trip_after != 0
    }
}

/// The three breaker states. Transitions are deterministic functions
/// of the observed request/outcome sequence — see the [module
/// docs](self).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests pass; consecutive failures are counted.
    #[default]
    Closed,
    /// Requests are refused while the cooldown drains.
    Open,
    /// The next request is the single probe.
    HalfOpen,
}

/// One circuit breaker: state plus the counters that drive it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trips: u32,
}

impl Breaker {
    /// A closed breaker with no history.
    pub const fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Consecutive terminal failures observed while closed.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Gates one request: `true` lets it execute, `false` refuses it
    /// (short-circuit). An open breaker consumes one cooldown unit per
    /// refusal and moves to half-open when the cooldown is spent, so
    /// the *next* request becomes the probe. Half-open admits without
    /// changing state — only the probe's recorded outcome moves it.
    pub fn admit(&mut self, config: &BreakerConfig) -> bool {
        if !config.armed() {
            return true;
        }
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Records an executed request's terminal success: resets the
    /// failure streak and closes a half-open breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records an executed request's terminal failure. Returns `true`
    /// when this failure trips the breaker open (counting toward
    /// quarantine). Short-circuited requests must not be recorded —
    /// they were never executed.
    pub fn record_failure(&mut self, config: &BreakerConfig) -> bool {
        if !config.armed() {
            return false;
        }
        match self.state {
            BreakerState::HalfOpen => {
                self.trip(config);
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= config.trip_after {
                    self.trip(config);
                    true
                } else {
                    false
                }
            }
            // Unreachable through the scheduler (open refusals are not
            // recorded), but harmless: stay open.
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, config: &BreakerConfig) {
        self.trips += 1;
        self.consecutive_failures = 0;
        self.cooldown_left = config.cooldown;
        self.state = if config.cooldown == 0 {
            BreakerState::HalfOpen
        } else {
            BreakerState::Open
        };
    }

    /// Whether this breaker's trip count has reached the quarantine
    /// threshold.
    pub fn quarantined(&self, config: &BreakerConfig) -> bool {
        config.quarantine_after != 0 && self.trips >= config.quarantine_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: BreakerConfig = BreakerConfig {
        trip_after: 2,
        cooldown: 2,
        quarantine_after: 2,
    };

    #[test]
    fn disabled_breakers_never_trip_or_refuse() {
        let cfg = BreakerConfig::default();
        assert!(!cfg.armed());
        let mut b = Breaker::new();
        for _ in 0..100 {
            assert!(b.admit(&cfg));
            assert!(!b.record_failure(&cfg));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        assert!(!b.quarantined(&cfg));
    }

    #[test]
    fn closed_trips_open_after_consecutive_failures_only() {
        let mut b = Breaker::new();
        assert!(b.admit(&CFG));
        assert!(!b.record_failure(&CFG));
        // A success resets the streak.
        b.record_success();
        assert!(!b.record_failure(&CFG));
        assert_eq!(b.state(), BreakerState::Closed);
        // Second consecutive failure trips.
        assert!(b.record_failure(&CFG));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_drains_cooldown_then_half_open_probes() {
        let mut b = Breaker::new();
        b.record_failure(&CFG);
        b.record_failure(&CFG);
        assert_eq!(b.state(), BreakerState::Open);
        // cooldown = 2: exactly two refusals, then the probe passes.
        assert!(!b.admit(&CFG));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(&CFG));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(&CFG), "half-open admits the probe");
        // Probe success closes the breaker and clears the streak.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_retrips_and_reaches_quarantine() {
        let mut b = Breaker::new();
        b.record_failure(&CFG);
        b.record_failure(&CFG);
        assert!(!b.admit(&CFG));
        assert!(!b.admit(&CFG));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(&CFG));
        // One failed probe re-trips immediately — no new streak needed.
        assert!(b.record_failure(&CFG));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(b.quarantined(&CFG));
    }

    #[test]
    fn zero_cooldown_trips_straight_to_half_open() {
        let cfg = BreakerConfig { cooldown: 0, ..CFG };
        let mut b = Breaker::new();
        b.record_failure(&cfg);
        b.record_failure(&cfg);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(&cfg), "no refusals before the probe");
    }

    #[test]
    fn transition_sequences_replay_deterministically() {
        // The same outcome script drives two breakers through an
        // identical state trajectory — the property chaos episodes
        // rely on.
        let script = [true, false, false, true, false, false, false];
        let run = || {
            let mut b = Breaker::new();
            let mut trace = Vec::new();
            for &ok in &script {
                let admitted = b.admit(&CFG);
                if admitted {
                    if ok {
                        b.record_success();
                    } else {
                        b.record_failure(&CFG);
                    }
                }
                trace.push((admitted, b.state(), b.trips()));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
