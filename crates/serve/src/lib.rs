//! `simd2-serve`: a multi-tenant plan service over the SIMD² stack.
//!
//! Clients submit recorded [`Plan`](simd2::Plan)s — or named registry
//! apps plus inputs — as jobs. An admission controller enforces
//! per-tenant quotas ([`TenantQuota`]) and a service-wide backpressure
//! gate, answering every submission explicitly ([`Rejected`]). A
//! weighted round-robin scheduler drains per-tenant FIFO queues onto
//! one shared backend wrapped in a
//! [`ResilientBackend`](simd2::ResilientBackend), under per-job
//! step-budget deadlines ([`Deadline`]) enforced at step boundaries,
//! with a result cache ([`PlanCache`]) keyed on the plan's structural
//! hash plus input fingerprints.
//!
//! Failure is a first-class state, not an afterthought. When armed by
//! [`ServeConfig`]: jobs halted by a step budget, a round quantum
//! ([`ResumeConfig`]), or a worker panic are *suspended* at a wave
//! boundary with a [`PlanCheckpoint`](simd2::PlanCheckpoint) and
//! resumed in a later round — completed waves are never re-executed;
//! repeat-offender tenants and plans trip deterministic circuit
//! breakers ([`BreakerConfig`]) and, eventually, plan quarantine; and
//! a degradation ladder ([`DegradeConfig`]) pins the kernel to scalar
//! after repeated ABFT detections and demotes dispatch to sequential
//! after repeated panics.
//!
//! The load-bearing invariants — proven under seeded chaos by the
//! `serve_soak` binary in `simd2-bench`:
//!
//! 1. **Bit-identity**: every completed job's output is bit-identical
//!    to a clean sequential replay of its plan — including jobs that
//!    were suspended and resumed across scheduling rounds.
//! 2. **Explicit terminals**: every admitted job reaches exactly one
//!    [`JobStatus`]; over-quota and over-deadline jobs get explicit
//!    responses, never a hang.
//! 3. **Isolation**: one tenant's panics, poisoned inputs, quota
//!    pressure, or quarantined plans never corrupt, delay past
//!    deadline bounds, starve, or abort another tenant's jobs.
//! 4. **Accountable telemetry**: per-tenant [`TenantStats`] counters
//!    are mirrored one-for-one by [`span::SERVE`](simd2_trace::span)
//!    events, and breaker/degradation transitions replay
//!    deterministically from the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod job;
pub mod service;

pub use admission::{plan_input_bytes, validate_plan, TenantLedger, TenantQuota};
pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use cache::{CacheStats, PlanCache};
pub use job::{Deadline, JobId, JobOutcome, JobPayload, JobSpec, JobStatus, Rejected, TenantId};
pub use service::{
    DegradeConfig, DegradeState, PlanService, ResumeConfig, ServeConfig, TenantStats,
};
