//! Job vocabulary: tenants, payloads, deadlines, and the explicit
//! responses every submission receives.

use simd2::{Plan, PlanKey};
use simd2_apps::AppKind;
use simd2_matrix::Matrix;

/// Identifies one tenant of a [`PlanService`](crate::PlanService).
/// Tenants are registered explicitly ([`register_tenant`]) with their
/// own [`TenantQuota`](crate::TenantQuota); submissions from unknown
/// tenants are rejected as malformed.
///
/// [`register_tenant`]: crate::PlanService::register_tenant
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Service-assigned job handle, unique within one service instance and
/// monotonically increasing in admission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Per-job execution deadline.
///
/// Deadlines are measured in *plan steps* — the deterministic unit of
/// work the executor dispatches — and enforced at step boundaries via
/// the executor's [`ReplayControl`](simd2::ReplayControl) seam. A job
/// whose budget cannot cover the next dispatch terminates with
/// [`JobStatus::Expired`] before that dispatch runs: an over-deadline
/// job always gets an explicit terminal response, never a hang and
/// never a mid-step abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deadline {
    /// No bound: the job runs all its steps.
    None,
    /// The job may execute at most this many plan steps.
    Steps(u64),
}

impl Deadline {
    /// Whether a dispatch of `pending` steps after `completed` steps
    /// fits the budget.
    pub(crate) fn allows(self, completed: u64, pending: u64) -> bool {
        match self {
            Deadline::None => true,
            Deadline::Steps(budget) => completed.saturating_add(pending) <= budget,
        }
    }

    /// The step budget, if bounded.
    pub fn budget(self) -> Option<u64> {
        match self {
            Deadline::None => None,
            Deadline::Steps(b) => Some(b),
        }
    }
}

/// What a client submits for execution.
#[derive(Clone, Debug)]
pub enum JobPayload {
    /// A recorded plan to replay.
    Plan(Plan),
    /// A named registry application: expanded to its recorded plan at
    /// admission time (on the service's internal recorder), so quotas
    /// and deadlines apply to the real step count, not a nominal one.
    App {
        /// Which application to run.
        app: AppKind,
        /// Problem dimension.
        n: usize,
        /// Workload generator seed.
        seed: u64,
    },
}

/// One job submission: a payload plus its deadline.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to execute.
    pub payload: JobPayload,
    /// Step budget ([`Deadline::None`] by default).
    pub deadline: Deadline,
}

impl JobSpec {
    /// A plan job with no deadline.
    pub fn plan(plan: Plan) -> Self {
        Self {
            payload: JobPayload::Plan(plan),
            deadline: Deadline::None,
        }
    }

    /// A registry-app job with no deadline.
    pub fn app(app: AppKind, n: usize, seed: u64) -> Self {
        Self {
            payload: JobPayload::App { app, n, seed },
            deadline: Deadline::None,
        }
    }

    /// Sets the deadline (builder form).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Why admission refused a submission. Refusals are always explicit —
/// the alternative (unbounded queueing) turns one greedy tenant into
/// everyone's latency problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The service-wide queue is full; nothing tenant-specific — retry
    /// after the backlog drains.
    Backpressure {
        /// Jobs currently queued across all tenants.
        queued: usize,
        /// The service-wide queue capacity.
        capacity: usize,
    },
    /// The submitting tenant is over one of its own quotas.
    QuotaExceeded {
        /// Which quota (`"in_flight_jobs"`, `"queued_steps"`,
        /// `"queued_bytes"`).
        quota: &'static str,
        /// The tenant's current usage.
        used: u64,
        /// What this submission would add.
        requested: u64,
        /// The quota limit.
        limit: u64,
    },
    /// The submission can never execute (unknown tenant, empty plan,
    /// incompatible step shapes, missing captured inputs, out-of-range
    /// app dimension) — resubmitting the same job cannot help.
    Malformed {
        /// Human-readable diagnosis.
        reason: String,
    },
}

impl Rejected {
    /// The telemetry stage label for this rejection class.
    pub fn stage(&self) -> &'static str {
        match self {
            Rejected::Backpressure { .. } => "rejected_backpressure",
            Rejected::QuotaExceeded { .. } => "rejected_quota",
            Rejected::Malformed { .. } => "rejected_malformed",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Backpressure { queued, capacity } => {
                write!(f, "backpressure: {queued}/{capacity} jobs queued")
            }
            Rejected::QuotaExceeded {
                quota,
                used,
                requested,
                limit,
            } => write!(
                f,
                "quota {quota} exceeded: {used} used + {requested} requested > {limit}"
            ),
            Rejected::Malformed { reason } => write!(f, "malformed: {reason}"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Terminal status of an admitted job. Every admitted job reaches
/// exactly one of these — the scheduler has no silent-drop path.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// The job ran (or was served from the plan cache) to completion.
    Completed {
        /// The final step's output.
        output: Matrix,
        /// Whether the result came from the plan cache (no backend
        /// work; trivially within any deadline).
        cache_hit: bool,
        /// Whether the recovery layer intervened (retry success, panic
        /// recovery, or fallback) on the way to this result.
        recovered: bool,
        /// Plan steps actually dispatched (0 on a cache hit).
        executed_steps: u64,
    },
    /// The step budget (or the scheduler's resume policy) ran out at a
    /// step boundary: `executed_steps` completed across every round,
    /// the next dispatch would have exceeded `budget`.
    ///
    /// When the service runs with checkpoint/resume armed
    /// ([`ResumeConfig`](crate::ResumeConfig)), expiry carries the
    /// checkpoint identity and resume accounting so callers can
    /// distinguish *expired, resumable* (the work halted by policy with
    /// budget math still open — resubmitting with a larger budget or
    /// resume cap can finish it) from *expired, terminal* (the step
    /// budget is genuinely exhausted).
    Expired {
        /// Steps completed before the budget ran out, summed over the
        /// initial round and every resumed round.
        executed_steps: u64,
        /// The deadline's step budget (`0` for [`Deadline::None`]).
        budget: u64,
        /// The plan's total step count.
        total_steps: u64,
        /// How many times the scheduler resumed this job from its
        /// checkpoint before giving up (`0` when resume is disabled).
        resumed_from: u64,
        /// Identity of the checkpoint the scheduler held at expiry
        /// (`None` when resume is disabled and no checkpoint was kept).
        checkpoint: Option<PlanKey>,
        /// Whether the remaining-budget math left room for more
        /// progress: `true` means the resume cap (not the step budget)
        /// ended the job.
        resumable: bool,
    },
    /// Execution failed terminally (recovery exhausted, poisoned input,
    /// structural error) at `step`.
    Failed {
        /// Index of the failing plan step.
        step: usize,
        /// Steps completed before the failure.
        executed_steps: u64,
        /// The rendered backend error.
        error: String,
    },
    /// The job's plan is quarantined: its circuit breaker tripped
    /// [`BreakerConfig::quarantine_after`](crate::BreakerConfig) times,
    /// so the scheduler refuses to dispatch it ever again. Terminal,
    /// without executing anything.
    Quarantined {
        /// Identity of the quarantined plan.
        key: PlanKey,
        /// Breaker trips the plan accumulated before quarantine.
        trips: u32,
    },
}

impl JobStatus {
    /// The telemetry stage label
    /// (`completed` / `expired` / `failed` / `quarantined`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed { .. } => "completed",
            JobStatus::Expired { .. } => "expired",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Quarantined { .. } => "quarantined",
        }
    }

    /// The completed output, if any.
    pub fn output(&self) -> Option<&Matrix> {
        match self {
            JobStatus::Completed { output, .. } => Some(output),
            _ => None,
        }
    }

    /// For [`JobStatus::Expired`]: the step budget left unspent when
    /// the job expired (`budget - executed_steps`). `Some(0)` means the
    /// budget was genuinely exhausted; a non-zero remainder means
    /// policy (the resume cap or a too-small round quantum) stopped the
    /// job, not the budget.
    pub fn remaining_budget(&self) -> Option<u64> {
        match self {
            JobStatus::Expired {
                executed_steps,
                budget,
                ..
            } => Some(budget.saturating_sub(*executed_steps)),
            _ => None,
        }
    }
}

/// One admitted job's terminal outcome, in execution order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The admitted job.
    pub job: JobId,
    /// How it ended.
    pub status: JobStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_arithmetic_is_exact_at_the_boundary() {
        assert!(Deadline::None.allows(u64::MAX, 1));
        assert!(Deadline::Steps(3).allows(2, 1));
        assert!(!Deadline::Steps(3).allows(3, 1));
        assert!(!Deadline::Steps(0).allows(0, 1));
        assert_eq!(Deadline::Steps(3).budget(), Some(3));
        assert_eq!(Deadline::None.budget(), None);
    }

    #[test]
    fn expiry_carries_resume_identity_and_remaining_budget_math() {
        let plan = {
            use simd2::Backend;
            use simd2_semiring::OpKind;
            let a = Matrix::filled(16, 16, 1.0);
            let c = Matrix::filled(16, 16, 0.0);
            let mut be = simd2::TiledBackend::new();
            let mut rec = simd2::PlanBuilder::over(&mut be);
            rec.mmo(OpKind::PlusMul, &a, &a, &c).unwrap();
            rec.finish()
        };
        let key = plan.cache_key();
        // Policy-stopped: budget math still open, checkpoint attached.
        let open = JobStatus::Expired {
            executed_steps: 3,
            budget: 10,
            total_steps: 8,
            resumed_from: 2,
            checkpoint: Some(key),
            resumable: true,
        };
        assert_eq!(open.label(), "expired");
        assert_eq!(open.remaining_budget(), Some(7));
        // Budget-exhausted: terminal expiry.
        let spent = JobStatus::Expired {
            executed_steps: 10,
            budget: 10,
            total_steps: 12,
            resumed_from: 0,
            checkpoint: None,
            resumable: false,
        };
        assert_eq!(spent.remaining_budget(), Some(0));
        let quarantined = JobStatus::Quarantined { key, trips: 3 };
        assert_eq!(quarantined.label(), "quarantined");
        assert!(quarantined.output().is_none());
        assert_eq!(quarantined.remaining_budget(), None);
    }

    #[test]
    fn rejection_stages_and_display() {
        let b = Rejected::Backpressure {
            queued: 4,
            capacity: 4,
        };
        let q = Rejected::QuotaExceeded {
            quota: "queued_steps",
            used: 10,
            requested: 5,
            limit: 12,
        };
        let m = Rejected::Malformed {
            reason: "empty plan".into(),
        };
        assert_eq!(b.stage(), "rejected_backpressure");
        assert_eq!(q.stage(), "rejected_quota");
        assert_eq!(m.stage(), "rejected_malformed");
        assert!(b.to_string().contains("4/4"));
        assert!(q.to_string().contains("queued_steps"));
        assert!(m.to_string().contains("empty plan"));
    }
}
