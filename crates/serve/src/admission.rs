//! Admission control: per-tenant quotas and plan validation.
//!
//! Admission answers one question — *may this job enter the queue?* —
//! and answers it explicitly. A submission is checked in a fixed order:
//! structural validity first (a malformed plan must never occupy queue
//! space), then the service-wide backpressure gate, then the tenant's
//! own quotas. The granted/refused decision is returned to the caller
//! as `Ok(JobId)` or a [`Rejected`] variant; nothing is ever silently
//! dropped or unboundedly buffered.

use simd2::{Plan, SlotOrigin};

use crate::job::Rejected;

/// Per-tenant admission quotas.
///
/// `max_in_flight` bounds jobs admitted but not yet terminal;
/// `max_queued_steps` / `max_queued_bytes` bound the *work* and *data*
/// waiting in the tenant's queue, so a tenant cannot sidestep the job
/// cap by submitting a few enormous plans. `weight` is the tenant's
/// weighted-round-robin share — jobs drained per scheduler cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum jobs admitted but not yet terminal (queued + running).
    pub max_in_flight: usize,
    /// Maximum plan steps waiting across the tenant's queue.
    pub max_queued_steps: u64,
    /// Maximum captured-input bytes waiting across the tenant's queue.
    pub max_queued_bytes: u64,
    /// Weighted-round-robin share (jobs per scheduler cycle; clamped to
    /// at least 1 when scheduling).
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            max_queued_steps: 4096,
            max_queued_bytes: 64 << 20,
            weight: 1,
        }
    }
}

impl TenantQuota {
    /// Sets the in-flight job cap (builder form).
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max;
        self
    }

    /// Sets the queued-step cap (builder form).
    pub fn with_max_queued_steps(mut self, max: u64) -> Self {
        self.max_queued_steps = max;
        self
    }

    /// Sets the queued-byte cap (builder form).
    pub fn with_max_queued_bytes(mut self, max: u64) -> Self {
        self.max_queued_bytes = max;
        self
    }

    /// Sets the scheduler weight (builder form).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// A tenant's live admission usage, maintained by the service: what the
/// quota checks compare against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantLedger {
    /// Jobs admitted but not yet terminal.
    pub in_flight: usize,
    /// Plan steps waiting in the queue.
    pub queued_steps: u64,
    /// Captured-input bytes waiting in the queue.
    pub queued_bytes: u64,
}

impl TenantLedger {
    /// Checks whether a job of `steps` steps and `bytes` input bytes
    /// fits under `quota`, given current usage.
    pub(crate) fn admit(
        &self,
        quota: &TenantQuota,
        steps: u64,
        bytes: u64,
    ) -> Result<(), Rejected> {
        if self.in_flight + 1 > quota.max_in_flight {
            return Err(Rejected::QuotaExceeded {
                quota: "in_flight_jobs",
                used: self.in_flight as u64,
                requested: 1,
                limit: quota.max_in_flight as u64,
            });
        }
        if self.queued_steps.saturating_add(steps) > quota.max_queued_steps {
            return Err(Rejected::QuotaExceeded {
                quota: "queued_steps",
                used: self.queued_steps,
                requested: steps,
                limit: quota.max_queued_steps,
            });
        }
        if self.queued_bytes.saturating_add(bytes) > quota.max_queued_bytes {
            return Err(Rejected::QuotaExceeded {
                quota: "queued_bytes",
                used: self.queued_bytes,
                requested: bytes,
                limit: quota.max_queued_bytes,
            });
        }
        Ok(())
    }
}

/// The captured-input payload of a plan, in bytes (f32 elements).
pub fn plan_input_bytes(plan: &Plan) -> u64 {
    plan.input_slots()
        .into_iter()
        .filter_map(|s| plan.input_value(s))
        .map(|m| (m.rows() * m.cols() * std::mem::size_of::<f32>()) as u64)
        .sum()
}

/// Validates that `plan` can execute at all: non-empty, every step's
/// operand shapes compatible and non-degenerate, every input slot's
/// captured value present. Plans failing here are rejected at admission
/// — they would only fail later at dispatch, after consuming queue
/// space and scheduler time.
pub fn validate_plan(plan: &Plan) -> Result<(), Rejected> {
    let malformed = |reason: String| Err(Rejected::Malformed { reason });
    if plan.is_empty() {
        return malformed("empty plan".into());
    }
    for slot in plan.input_slots() {
        let (r, c) = plan.slot_shape(slot);
        if r == 0 || c == 0 {
            return malformed(format!(
                "input slot {} has zero dimension {r}x{c}",
                slot.index()
            ));
        }
        if plan.input_value(slot).is_none() {
            return malformed(format!("input slot {} has no captured value", slot.index()));
        }
    }
    for (i, step) in plan.steps().iter().enumerate() {
        let (m, k) = plan.slot_shape(step.a);
        let (k2, n) = plan.slot_shape(step.b);
        let (cm, cn) = plan.slot_shape(step.c);
        let (dm, dn) = plan.slot_shape(step.d);
        if m == 0 || n == 0 || k == 0 {
            return malformed(format!("step {i} has zero geometry {m}x{n}x{k}"));
        }
        if k != k2 || (cm, cn) != (m, n) || (dm, dn) != (m, n) {
            return malformed(format!(
                "step {i} shapes do not fit: A {m}x{k}, B {k2}x{n}, C {cm}x{cn}, D {dm}x{dn}"
            ));
        }
        for slot in [step.a, step.b, step.c] {
            if matches!(plan.slot_origin(slot), SlotOrigin::Input)
                && plan.input_value(slot).is_none()
            {
                return malformed(format!(
                    "step {i} reads input slot {} with no value",
                    slot.index()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::{Backend, PlanBuilder, TiledBackend};
    use simd2_matrix::Matrix;
    use simd2_semiring::OpKind;

    fn small_plan() -> Plan {
        let a = Matrix::filled(16, 16, 1.0);
        let c = Matrix::filled(16, 16, f32::INFINITY);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(OpKind::MinPlus, &a, &a, &c).unwrap();
        rec.finish()
    }

    #[test]
    fn quota_checks_fire_in_field_order() {
        let quota = TenantQuota::default()
            .with_max_in_flight(2)
            .with_max_queued_steps(10)
            .with_max_queued_bytes(1000);
        let ledger = TenantLedger {
            in_flight: 2,
            queued_steps: 0,
            queued_bytes: 0,
        };
        assert!(matches!(
            ledger.admit(&quota, 1, 1),
            Err(Rejected::QuotaExceeded {
                quota: "in_flight_jobs",
                ..
            })
        ));
        let ledger = TenantLedger {
            in_flight: 0,
            queued_steps: 8,
            queued_bytes: 0,
        };
        assert!(matches!(
            ledger.admit(&quota, 3, 1),
            Err(Rejected::QuotaExceeded {
                quota: "queued_steps",
                ..
            })
        ));
        let ledger = TenantLedger {
            in_flight: 0,
            queued_steps: 0,
            queued_bytes: 999,
        };
        assert!(matches!(
            ledger.admit(&quota, 1, 2),
            Err(Rejected::QuotaExceeded {
                quota: "queued_bytes",
                ..
            })
        ));
        assert!(ledger.admit(&quota, 1, 1).is_ok());
    }

    #[test]
    fn input_bytes_count_captured_operands_once() {
        let plan = small_plan();
        // Two distinct inputs (A doubles as B via interning, C): each
        // 16x16 f32.
        assert_eq!(plan_input_bytes(&plan), 2 * 16 * 16 * 4);
    }

    #[test]
    fn well_formed_plans_validate() {
        assert!(validate_plan(&small_plan()).is_ok());
    }

    #[test]
    fn empty_plans_are_malformed() {
        let mut be = TiledBackend::new();
        let plan = PlanBuilder::over(&mut be).finish();
        assert!(matches!(
            validate_plan(&plan),
            Err(Rejected::Malformed { .. })
        ));
    }
}
