//! Property-based soundness of the plan cache key
//! ([`Plan::cache_key`]): structurally identical independently-recorded
//! plans key equal (so the service's cache-hit replay is the cold
//! replay, bit for bit), and *any* single-bit perturbation of *any*
//! captured input byte moves the fingerprint and misses the cache.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2::{Backend, Plan, PlanBuilder, TiledBackend};
use simd2_matrix::Matrix;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_serve::{JobSpec, JobStatus, PlanService, ServeConfig, TenantId, TenantQuota};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// In-domain operand values for the given op (reliabilities in (0,1],
/// booleans in {0,1}, everything else small non-negative reals).
fn operand(op: OpKind, raw: u16) -> f32 {
    let raw = f32::from(raw % 64);
    match op {
        OpKind::OrAnd => {
            if raw >= 32.0 {
                1.0
            } else {
                0.0
            }
        }
        OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
        _ => raw * 0.25,
    }
}

fn matrix_strategy(op: OpKind, rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(any::<u16>(), rows * cols)
        .prop_map(move |vals| Matrix::from_fn(rows, cols, |r, c| operand(op, vals[r * cols + c])))
}

fn gen_operands(op: OpKind, m: usize, n: usize, k: usize, seed: u32) -> (Matrix, Matrix, Matrix) {
    let mut runner = proptest::test_runner::TestRunner::new_seeded(u64::from(seed));
    let a = matrix_strategy(op, m, k)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let b = matrix_strategy(op, k, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    let c = matrix_strategy(op, m, n)
        .new_tree(&mut runner)
        .unwrap()
        .current();
    (a, b, c)
}

/// Records a two-step chain (D0 = A⊗B⊕C, D1 = A⊗B⊕D0) on a fresh
/// recorder — called twice, it produces *independent* `Plan` values
/// with identical structure and inputs.
fn record_chain(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Plan {
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let d0 = rec.mmo(op, a, b, c).expect("recording step 0");
    rec.mmo(op, a, b, &d0).expect("recording step 1");
    rec.finish()
}

/// Records the same computation as [`record_chain`] the *wasteful* way:
/// the root subexpression is evaluated twice and the chain continues
/// off the duplicate. Structurally different from the clean recording,
/// but post-CSE identical.
fn record_dup_chain(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Plan {
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    rec.mmo(op, a, b, c).expect("recording step 0");
    let dup = rec.mmo(op, a, b, c).expect("recording duplicate step");
    rec.mmo(op, a, b, &dup).expect("recording step 2");
    rec.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Independently-recorded identical plans share a cache key, and
    /// the service serves the second submission from the cache with the
    /// cold run's exact bits.
    #[test]
    fn identical_recordings_key_equal_and_cache_hit_is_bit_identical(
        op in op_strategy(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..16,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);
        let p1 = record_chain(op, &a, &b, &c);
        let p2 = record_chain(op, &a, &b, &c);
        prop_assert_eq!(p1.cache_key(), p2.cache_key());

        let mut svc = PlanService::new(TiledBackend::new(), ServeConfig::default());
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        svc.submit(t, JobSpec::plan(p1)).unwrap();
        svc.submit(t, JobSpec::plan(p2)).unwrap();
        prop_assert_eq!(svc.run_until_idle(), 2);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed { output: cold, cache_hit: false, .. } = &outcomes[0].status
        else {
            panic!("cold run must complete, got {:?}", outcomes[0].status);
        };
        let JobStatus::Completed { output: warm, cache_hit: true, executed_steps: 0, .. } =
            &outcomes[1].status
        else {
            panic!("resubmission must hit the cache, got {:?}", outcomes[1].status);
        };
        prop_assert_eq!(cold.shape(), warm.shape());
        for (x, y) in cold.as_slice().iter().zip(warm.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = svc.cache_stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// Flipping any single bit of any captured input element keeps the
    /// structural hash but moves the fingerprint: the perturbed plan
    /// misses the cache.
    #[test]
    fn any_input_bit_perturbation_misses_the_cache(
        op in op_strategy(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..16,
        seed in any::<u32>(),
        which in 0usize..3,
        elem in any::<u32>(),
        bit in 0u32..32,
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);
        let p1 = record_chain(op, &a, &b, &c);

        let (mut a2, mut b2, mut c2) = (a.clone(), b.clone(), c.clone());
        let target = match which {
            0 => &mut a2,
            1 => &mut b2,
            _ => &mut c2,
        };
        let idx = elem as usize % target.len();
        let old = target.as_slice()[idx];
        target.as_mut_slice()[idx] = f32::from_bits(old.to_bits() ^ (1 << bit));
        let p2 = record_chain(op, &a2, &b2, &c2);

        prop_assert_eq!(p1.structural_hash(), p2.structural_hash());
        prop_assert_ne!(p1.cache_key(), p2.cache_key());

        let mut svc = PlanService::new(TiledBackend::new(), ServeConfig::default());
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        svc.submit(t, JobSpec::plan(p1)).unwrap();
        svc.submit(t, JobSpec::plan(p2)).unwrap();
        prop_assert_eq!(svc.run_until_idle(), 2);
        let stats = svc.cache_stats();
        prop_assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    /// The pre-optimization keying fix: two *differently-recorded*
    /// plans of the same computation — one clean, one evaluating its
    /// root subexpression twice — key apart raw, but with
    /// `optimize_plans` armed the service's admission-time CSE folds
    /// them onto one post-optimization cache entry: the second
    /// submission is a cache hit serving the first run's exact bits,
    /// which also equal the clean recording's eager final output.
    #[test]
    fn post_cse_identical_recordings_share_one_cache_entry(
        op in op_strategy(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..16,
        seed in any::<u32>(),
    ) {
        let (a, b, c) = gen_operands(op, m, n, k, seed);
        let clean = record_chain(op, &a, &b, &c);
        let wasteful = record_dup_chain(op, &a, &b, &c);
        // Raw recordings key apart — this is exactly the miss the
        // pre-optimization keying suffered.
        prop_assert_ne!(clean.cache_key(), wasteful.cache_key());

        // The eager bits of the computation, for the end-to-end check.
        let mut eager_be = TiledBackend::new();
        let d0 = eager_be.mmo(op, &a, &b, &c).expect("eager step 0");
        let want = eager_be.mmo(op, &a, &b, &d0).expect("eager step 1");

        let config = ServeConfig { optimize_plans: true, ..ServeConfig::default() };
        let mut svc = PlanService::new(TiledBackend::new(), config);
        let t = TenantId(0);
        svc.register_tenant(t, TenantQuota::default());
        svc.submit(t, JobSpec::plan(wasteful)).unwrap();
        svc.submit(t, JobSpec::plan(clean)).unwrap();
        prop_assert_eq!(svc.run_until_idle(), 2);
        let outcomes = svc.take_outcomes();
        let JobStatus::Completed { output: cold, cache_hit: false, .. } = &outcomes[0].status
        else {
            panic!("cold run must complete, got {:?}", outcomes[0].status);
        };
        let JobStatus::Completed { output: warm, cache_hit: true, executed_steps: 0, .. } =
            &outcomes[1].status
        else {
            panic!("post-CSE twin must hit the cache, got {:?}", outcomes[1].status);
        };
        prop_assert_eq!(cold.shape(), want.shape());
        for (x, y) in cold.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in warm.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = svc.cache_stats();
        prop_assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }
}
