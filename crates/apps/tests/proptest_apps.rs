//! Property-based tests: every application's SIMD²-ized implementation
//! agrees with its independent baseline algorithm across random sizes and
//! seeds.

use proptest::prelude::*;
use simd2::backend::ReferenceBackend;
use simd2::solve::ClosureAlgorithm;
use simd2_apps::{aplp, apsp, gtc, knn, mst, paths};
use simd2_semiring::OpKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn apsp_agrees_with_blocked_fw(n in 8usize..48, seed in 0u64..10_000) {
        let g = apsp::generate(n, seed);
        let want = apsp::baseline(&g);
        let mut be = ReferenceBackend::new();
        let got = apsp::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        prop_assert_eq!(got.closure, want);
    }

    #[test]
    fn aplp_agrees_with_topological_dp(n in 8usize..48, seed in 0u64..10_000) {
        let g = aplp::generate(n, seed);
        let want = aplp::baseline(&g);
        let mut be = ReferenceBackend::new();
        let got = aplp::simd2(&mut be, &g, ClosureAlgorithm::BellmanFord, true);
        prop_assert_eq!(got.closure, want);
    }

    #[test]
    fn mcp_agrees_with_fw(n in 8usize..40, seed in 0u64..10_000) {
        let g = paths::generate_mcp(n, seed);
        let want = paths::baseline(OpKind::MaxMin, &g);
        let mut be = ReferenceBackend::new();
        let got = paths::simd2(&mut be, OpKind::MaxMin, &g, ClosureAlgorithm::Leyzorek, true);
        prop_assert_eq!(got.closure, want);
    }

    #[test]
    fn minrp_agrees_with_fw_on_dags(n in 8usize..40, seed in 0u64..10_000) {
        let g = paths::generate_minrp(n, seed);
        let want = paths::baseline(OpKind::MinMul, &g);
        let mut be = ReferenceBackend::new();
        let got = paths::simd2(&mut be, OpKind::MinMul, &g, ClosureAlgorithm::Leyzorek, true);
        let diff = got.closure.max_abs_diff(&want).unwrap();
        prop_assert!(diff <= 1e-6, "diff {diff}");
    }

    #[test]
    fn mst_agrees_with_kruskal(n in 8usize..40, p in 0.05f64..0.4, seed in 0u64..10_000) {
        let g = mst::generate(n, p, seed);
        let want = mst::baseline(&g);
        let mut be = ReferenceBackend::new();
        let (got, _) = mst::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gtc_agrees_with_bitset_bfs(n in 8usize..72, seed in 0u64..10_000) {
        let g = gtc::generate(n, seed);
        let want = gtc::baseline(&g);
        let mut be = ReferenceBackend::new();
        let got = gtc::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        prop_assert_eq!(got.closure, want);
    }

    #[test]
    fn knn_has_perfect_recall_on_reference_backend(n in 10usize..40, seed in 0u64..10_000) {
        let pts = knn::generate(n, seed);
        let want = knn::baseline(&pts, 4);
        let mut be = ReferenceBackend::new();
        let got = knn::simd2(&mut be, &pts, 4);
        prop_assert_eq!(knn::recall(&want, &got), 1.0);
    }

    #[test]
    fn mst_total_weight_never_exceeds_any_spanning_construction(
        n in 6usize..24, seed in 0u64..10_000
    ) {
        use simd2_apps::UnionFind;
        let g = mst::generate(n, 0.2, seed);
        let tree = mst::baseline(&g);
        // Greedy construction in raw edge order is a valid spanning
        // forest; the MST must weigh no more.
        let mut uf = UnionFind::new(n);
        let mut total = 0.0f64;
        for (u, v, w) in g.edges() {
            if u < v && uf.union(u, v) {
                total += f64::from(w);
            }
        }
        prop_assert!(tree.total_weight <= total + 1e-9);
    }
}
