//! Minimum spanning tree (MST) — min-max (minimax) closure.
//!
//! * Baseline: Kruskal's algorithm with a union-find forest (the cudaMST
//!   baseline's algorithm class; `O(E log E)`).
//! * SIMD²: the min-max closure yields all-pairs *bottleneck* distances;
//!   with distinct edge weights, an edge belongs to the MST exactly when
//!   its weight equals the bottleneck distance between its endpoints —
//!   the cycle property in matrix form.

use simd2::solve::{ClosureAlgorithm, ClosureResult};
use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{Graph, Matrix};
use simd2_semiring::OpKind;

use crate::unionfind::UnionFind;

/// An MST result: the chosen edges (endpoint-sorted) and the total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct MstResult {
    /// Undirected tree edges as `(u, v, w)` with `u < v`, sorted.
    pub edges: Vec<(usize, usize, f32)>,
    /// Sum of tree edge weights.
    pub total_weight: f64,
}

/// Workload generator: connected undirected graph whose edge weights are
/// a shuffled sequence of *distinct* integers (distinctness makes the MST
/// unique; integers keep fp16 runs bit-exact while they stay ≤ 2048).
pub fn generate(n: usize, extra_p: f64, seed: u64) -> Graph {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let base = simd2_matrix::gen::random_connected_undirected(n, extra_p, 1.0, 2.0, seed);
    // Re-weight each undirected pair with a unique integer.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (s, d, _) in base.edges() {
        if s < d {
            pairs.push((s, d));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut weights: Vec<usize> = (1..=pairs.len()).collect();
    weights.shuffle(&mut rng);
    let mut g = Graph::new(n);
    for ((u, v), w) in pairs.into_iter().zip(weights) {
        g.add_undirected_edge(u, v, w as f32);
    }
    g
}

/// Baseline: Kruskal with union-find.
pub fn baseline(g: &Graph) -> MstResult {
    let mut edges: Vec<(usize, usize, f32)> = g.edges().filter(|&(u, v, _)| u < v).collect();
    edges.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .unwrap()
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut uf = UnionFind::new(g.vertex_count());
    let mut tree = Vec::with_capacity(g.vertex_count().saturating_sub(1));
    let mut total = 0.0f64;
    for (u, v, w) in edges {
        if uf.union(u, v) {
            tree.push((u, v, w));
            total += f64::from(w);
        }
    }
    tree.sort_unstable_by_key(|e| (e.0, e.1));
    MstResult {
        edges: tree,
        total_weight: total,
    }
}

/// SIMD²-ized MST: min-max closure, then edge extraction by the cycle
/// property. Returns the MST and the closure statistics (the work the
/// performance model charges).
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (MstResult, ClosureResult) {
    let adj = g.adjacency(OpKind::MinMax);
    let closure = simd2::solve::closure(backend, OpKind::MinMax, &adj, algorithm, convergence)
        .expect("square adjacency");
    let mst = extract_mst(g, &closure.closure);
    (mst, closure)
}

/// Like [`simd2`], but also records the closure's MMO sequence as a
/// replayable [`Plan`] (the host-side Kruskal extraction records
/// nothing — it is the epilogue the timing model prices separately).
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (MstResult, ClosureResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let (mst, closure) = simd2(&mut rec, g, algorithm, convergence);
    (mst, closure, rec.finish())
}

/// Extracts the MST from the bottleneck matrix: with distinct weights,
/// `(u, v) ∈ MST ⟺ w(u, v) == bottleneck(u, v)`.
pub fn extract_mst(g: &Graph, bottleneck: &Matrix) -> MstResult {
    let mut tree = Vec::new();
    let mut total = 0.0f64;
    for (u, v, w) in g.edges() {
        if u < v && bottleneck[(u, v)] == w {
            tree.push((u, v, w));
            total += f64::from(w);
        }
    }
    tree.sort_unstable_by_key(|e| (e.0, e.1));
    MstResult {
        edges: tree,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::ReferenceBackend;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn kruskal_produces_a_spanning_tree() {
        let g = generate(40, 0.1, 3);
        let mst = baseline(&g);
        assert_eq!(mst.edges.len(), 39, "n−1 edges");
        let mut uf = UnionFind::new(40);
        for &(u, v, _) in &mst.edges {
            assert!(uf.union(u, v), "tree edges never form cycles");
        }
        assert_eq!(uf.component_count(), 1, "spans all vertices");
    }

    #[test]
    fn bellman_ford_variant_agrees() {
        let g = generate(24, 0.2, 9);
        let want = baseline(&g);
        let mut be = ReferenceBackend::new();
        let (got, _) = simd2(&mut be, &g, ClosureAlgorithm::BellmanFord, false);
        assert_eq!(got, want);
    }

    #[test]
    fn kruskal_weight_is_minimal_under_edge_swaps() {
        // Swapping any non-tree edge in (and the cycle's max edge out)
        // must not reduce total weight — spot-check the optimum.
        let g = generate(16, 0.3, 7);
        let mst = baseline(&g);
        let tree_weight = mst.total_weight;
        // Any spanning tree built greedily from a different order is ≥.
        let mut alt_edges: Vec<(usize, usize, f32)> =
            g.edges().filter(|&(u, v, _)| u < v).collect();
        alt_edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap()); // worst-first
        let mut uf = UnionFind::new(16);
        let mut alt_total = 0.0f64;
        for (u, v, w) in alt_edges {
            if uf.union(u, v) {
                alt_total += f64::from(w);
            }
        }
        assert!(alt_total >= tree_weight);
    }

    #[test]
    fn forest_inputs_are_handled() {
        // Two disconnected cliques → a minimum spanning *forest*.
        let mut g = Graph::new(6);
        let mut w = 1.0;
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            g.add_undirected_edge(a, b, w);
            w += 1.0;
        }
        for &(a, b) in &[(3, 4), (4, 5), (3, 5)] {
            g.add_undirected_edge(a, b, w);
            w += 1.0;
        }
        let mst = baseline(&g);
        assert_eq!(mst.edges.len(), 4, "two trees of 2 edges each");
        let mut be = ReferenceBackend::new();
        let (got, _) = simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        assert_eq!(got, mst);
    }

    #[test]
    fn generator_weights_are_distinct() {
        let g = generate(20, 0.2, 11);
        let mut ws: Vec<u32> = g
            .edges()
            .filter(|&(u, v, _)| u < v)
            .map(|e| e.2 as u32)
            .collect();
        let before = ws.len();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), before);
    }
}
