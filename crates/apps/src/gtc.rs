//! Graph transitive closure (GTC) — or-and.
//!
//! * Baseline: per-vertex BFS over packed bitset rows (the boolean
//!   linear-algebra style of cuBool).
//! * SIMD²: or-and closure on the `0.0`/`1.0`-encoded reachability
//!   matrix.

use simd2::solve::{self, ClosureAlgorithm, ClosureResult};
use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{gen, Graph, Matrix};
use simd2_semiring::OpKind;

/// Workload generator: sparse digraph with average out-degree ≈ 4.
pub fn generate(n: usize, seed: u64) -> Graph {
    let p = (4.0 / n as f64).min(0.5);
    gen::gnp_graph(n, p, 1.0, 2.0, seed)
}

/// Packed boolean adjacency rows (64 vertices per word).
fn bitset_rows(g: &Graph) -> Vec<Vec<u64>> {
    let n = g.vertex_count();
    let words = n.div_ceil(64);
    let mut rows = vec![vec![0u64; words]; n];
    for v in 0..n {
        rows[v][v / 64] |= 1 << (v % 64); // reflexive
    }
    for (s, d, _) in g.edges() {
        rows[s][d / 64] |= 1 << (d % 64);
    }
    rows
}

/// Baseline: breadth-first reachability from every vertex, with
/// word-parallel row unions — the boolean-matrix flavour cuBool applies.
pub fn baseline(g: &Graph) -> Matrix {
    let n = g.vertex_count();
    let adj = bitset_rows(g);
    let words = n.div_ceil(64);
    let mut reach = adj.clone();
    // Iterate to fixed point: reach[v] |= union of reach[u] over the
    // frontier; with row unions this is a semi-naive closure.
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let mut updated = reach[v].clone();
            for w in 0..words {
                let mut bits = reach[v][w];
                while bits != 0 {
                    let u = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if u < n && u != v {
                        for x in 0..words {
                            updated[x] |= reach[u][x];
                        }
                    }
                }
            }
            if updated != reach[v] {
                reach[v] = updated;
                changed = true;
            }
        }
    }
    Matrix::from_fn(n, n, |r, c| {
        if reach[r][c / 64] >> (c % 64) & 1 == 1 {
            1.0
        } else {
            0.0
        }
    })
}

/// SIMD²-ized GTC: or-and closure.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> ClosureResult {
    solve::closure(
        backend,
        OpKind::OrAnd,
        &g.reachability(),
        algorithm,
        convergence,
    )
    .expect("square adjacency")
}

/// Like [`simd2`], but also records the closure's MMO sequence as a
/// replayable [`Plan`].
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (ClosureResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let result = simd2(&mut rec, g, algorithm, convergence);
    (result, rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::ReferenceBackend;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn baseline_reaches_transitively() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let r = baseline(&g);
        assert_eq!(r[(0, 2)], 1.0, "two hops");
        assert_eq!(r[(2, 0)], 0.0);
        assert_eq!(r[(3, 3)], 1.0, "reflexive");
        assert_eq!(r[(0, 3)], 0.0);
    }

    #[test]
    fn closure_is_transitive_and_reflexive() {
        let g = generate(32, 7);
        let mut be = ReferenceBackend::new();
        let r = simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure;
        let n = 32;
        for v in 0..n {
            assert_eq!(r[(v, v)], 1.0);
        }
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if r[(a, b)] == 1.0 && r[(b, c)] == 1.0 {
                        assert_eq!(r[(a, c)], 1.0, "{a}->{b}->{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn dense_graph_closes_fully() {
        let g = gen::gnp_graph(20, 0.4, 1.0, 2.0, 3);
        // High density almost surely yields one strongly connected
        // component; if so the closure is all ones.
        let r = baseline(&g);
        let all_ones = r.as_slice().iter().all(|&x| x == 1.0);
        let mut be = ReferenceBackend::new();
        let got = simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure;
        assert_eq!(got, r);
        if all_ones {
            assert_eq!(r.density(0.0), 1.0);
        }
    }
}
