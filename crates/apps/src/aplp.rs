//! All-pairs critical (longest) path (APLP) — max-plus on DAGs.
//!
//! The paper builds APLP "by extending … ECL-APSP with reversing the
//! input weights on \[a\] DAG to support the desired recurrence relation";
//! the SIMD² version simply switches the instruction to max-plus. Our
//! baseline is an independent algorithm — per-source dynamic programming
//! in topological order — which makes the validation meaningful.

use simd2::solve::{self, ClosureAlgorithm, ClosureResult};
use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{gen, Graph, Matrix};
use simd2_semiring::OpKind;

/// Workload generator: random DAG (edges run from lower to higher vertex
/// id) with fp16-exact integer weights and average degree ≈ 8.
pub fn generate(n: usize, seed: u64) -> Graph {
    let p = (16.0 / n as f64).min(0.5);
    let mut g = gen::random_dag(n, p, 1.0, 32.0, seed);
    // Snap to integers for bit-exact reduced-precision validation.
    g = g.map_weights(|w| w.round().clamp(1.0, 32.0));
    // Critical-path workloads (schedules, circuits) carry long dependency
    // chains that grow with design size; thread one through every 8th
    // vertex. This growing depth is what degrades APLP at larger inputs
    // (paper §6.3).
    for v in (0..n.saturating_sub(8)).step_by(8) {
        g.add_edge(v, v + 8, 1.0);
    }
    g
}

/// Baseline: per-source longest-path DP in topological order
/// (`O(V·(V+E))`), the classic critical-path algorithm.
///
/// Returns the all-pairs longest-path matrix; unreachable pairs hold
/// `−∞`, the diagonal holds `0`.
pub fn baseline(g: &Graph) -> Matrix {
    let n = g.vertex_count();
    let adj = g.out_neighbors();
    let mut d = Matrix::filled(n, n, f32::NEG_INFINITY);
    for src in 0..n {
        d[(src, src)] = 0.0;
        // Vertices are already topologically ordered (edges go s → d with
        // s < d), so one ascending sweep settles every distance.
        for u in src..n {
            let du = d[(src, u)];
            if du == f32::NEG_INFINITY {
                continue;
            }
            for &(v, w) in &adj[u] {
                let cand = du + w;
                if cand > d[(src, v)] {
                    d[(src, v)] = cand;
                }
            }
        }
    }
    d
}

/// SIMD²-ized APLP: max-plus closure.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> ClosureResult {
    let adj = g.adjacency(OpKind::MaxPlus);
    solve::closure(backend, OpKind::MaxPlus, &adj, algorithm, convergence)
        .expect("square adjacency")
}

/// Like [`simd2`], but also records the solve's MMO sequence as a
/// replayable [`Plan`].
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (ClosureResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let result = simd2(&mut rec, g, algorithm, convergence);
    (result, rec.finish())
}

/// Length of the overall critical path (the largest finite entry).
pub fn critical_path_length(d: &Matrix) -> f32 {
    d.as_slice()
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::ReferenceBackend;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn critical_path_dominates_every_edge() {
        let g = generate(30, 5);
        let d = baseline(&g);
        let cp = critical_path_length(&d);
        for (_, _, w) in g.edges() {
            assert!(cp >= w);
        }
    }

    #[test]
    fn unreachable_pairs_stay_neg_infinity() {
        let g = generate(20, 7);
        let d = baseline(&g);
        // Backward pairs (dst < src) are unreachable in this DAG.
        for s in 1..20 {
            assert_eq!(d[(s, 0)], f32::NEG_INFINITY);
        }
    }

    #[test]
    fn aplp_needs_more_iterations_on_deeper_dags() {
        // Chain DAG: depth n − 1 ⇒ Leyzorek needs ~log2(n) productive
        // iterations; a shallow DAG converges faster. This is the §6.3
        // effect that degrades APLP at larger inputs.
        let mut deep = Graph::new(64);
        for v in 0..63 {
            deep.add_edge(v, v + 1, 1.0);
        }
        let mut shallow = Graph::new(64);
        for v in 1..64 {
            shallow.add_edge(0, v, 1.0);
        }
        let mut be = ReferenceBackend::new();
        let rd = simd2(&mut be, &deep, ClosureAlgorithm::Leyzorek, true);
        let rs = simd2(&mut be, &shallow, ClosureAlgorithm::Leyzorek, true);
        assert!(rd.stats.iterations > rs.stats.iterations);
    }
}
