//! Application-level timing model (Figures 11, 12 and 13).
//!
//! Mirrors the paper's §5.1 methodology: the *functional* runs (the other
//! modules of this crate) establish correctness and produce the operation
//! statistics — in particular the closure iteration counts, which are
//! data-dependent — and the machine model in [`simd2_gpu`] prices the
//! instruction streams at any input scale.
//!
//! The baseline kernels are priced through per-application cost profiles.
//! Their *sustained-efficiency* constants are calibrated to the relative
//! performance the paper reports for its (very heterogeneous) baseline
//! codebases — ECL-APSP is a 2021 state-of-the-art code, the CUDA-FW
//! repositories and kNN-CUDA are older research code, cudaMST is
//! contention-limited, and cuBool's boolean kernels predate tensor pipes.
//! What the model *derives* (rather than encodes) is every SIMD²-side
//! number: tile-op counts, iteration counts, convergence-check and
//! epilogue costs, and the CUDA-core vs SIMD²-unit gap.

use simd2::solve::ClosureAlgorithm;
use simd2::{Backend, ReferenceBackend};
use simd2_gpu::{Gpu, KernelProfile, MmoTrace, Seconds};
use simd2_semiring::OpKind;
use simd2_trace::{field, span, Counter, Tracer};

use crate::harness::{self, AppRun};
use crate::registry::AppKind;
use crate::{aplp, apsp, gtc, mst, paths};

/// Feature dimensionality assumed by the KNN *timing* workload (the
/// functional tests use [`crate::knn::DIMS`] for host tractability).
pub const KNN_TIMING_DIMS: usize = 1024;

/// Execution configuration of Figure 11/13.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// The state-of-the-art GPU baseline implementation.
    Baseline,
    /// The SIMD²-ized algorithm on CUDA cores (no SIMD² units).
    Simd2CudaCores,
    /// The SIMD²-ized algorithm on SIMD² units.
    Simd2Units,
    /// SIMD² on the structured-sparsity tile pipe (Fig 13).
    Simd2SparseUnits,
}

impl Config {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Simd2CudaCores => "SIMD2 w/ CUDA cores",
            Config::Simd2Units => "SIMD2 w/ SIMD2 units",
            Config::Simd2SparseUnits => "SIMD2 w/ sparse SIMD2 units",
        }
    }
}

/// Sustained efficiency of each baseline code, relative to peak issue
/// rate (see module docs for the calibration rationale).
fn baseline_efficiency(app: AppKind) -> f64 {
    match app {
        // ECL-APSP: modern, highly optimised blocked FW (the streaming
        // APSP baseline is the same code, re-run from scratch).
        AppKind::Apsp | AppKind::Aplp | AppKind::StreamingApsp => 0.25,
        // CUDA-FW (research code); the max-min variant additionally eats
        // the shared-port hazard, which its naive kernel cannot hide.
        AppKind::Mcp => 0.13,
        // CUDA-FW multiplicative variants pipeline better (mul is a
        // full-rate op) — closer to peak.
        AppKind::MaxRp | AppKind::MinRp => 0.28,
        // cuBool dense-mode boolean kernels (streaming reachability's
        // recompute baseline included).
        AppKind::Gtc | AppKind::StreamingBfs => 0.38,
        // kNN-CUDA's hand-rolled distance kernel (vs CUTLASS).
        AppKind::Knn => 0.15,
        // Kruskal is priced separately (serial-ish union-find).
        AppKind::Mst => 1.0,
    }
}

/// Total speedup evaluations priced by the timing model.
static APP_PHASES: Counter = Counter::new("apps.phases");

/// The whole-application timing model.
#[derive(Clone, Debug)]
pub struct AppTiming {
    gpu: Gpu,
    tracer: Tracer,
}

impl AppTiming {
    /// Builds the model over a machine description.
    pub fn new(gpu: Gpu) -> Self {
        Self {
            gpu,
            tracer: Tracer::off(),
        }
    }

    /// Routes [`span::APP_PHASE`] telemetry from [`Self::speedup`] through
    /// `tracer`. One instant event is emitted per evaluation, carrying the
    /// app label, dimension, configuration, iteration count and the model's
    /// baseline/SIMD² timings.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Builder-style [`Self::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// The tracer telemetry is routed through.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The underlying machine model.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Time of the state-of-the-art baseline at dimension `n`.
    pub fn baseline_time(&self, app: AppKind, n: usize) -> Seconds {
        let nf = n as f64;
        let eff = baseline_efficiency(app);
        match app {
            // Blocked FW: n³ steps, 3 kernels per 32-wide block phase.
            // The streaming APSP baseline throws the stream away and
            // re-closes the final graph with the same kernels.
            AppKind::Apsp | AppKind::Aplp | AppKind::StreamingApsp => {
                let op = app.spec().op;
                self.gpu.kernel_time(&KernelProfile {
                    element_steps: nf * nf * nf,
                    slots_per_step: simd2_gpu::cost::cuda_op_cost(op).total_slots(),
                    bytes: 3.0 * nf * nf * 4.0 * (nf / 32.0),
                    launches: 3 * (n as u64 / 32),
                    efficiency: eff,
                })
            }
            // Naive multi-stage FW: n³ steps, 2 launches per phase.
            AppKind::Mcp | AppKind::MaxRp | AppKind::MinRp => {
                let op = app.spec().op;
                self.gpu.kernel_time(&KernelProfile {
                    element_steps: nf * nf * nf,
                    slots_per_step: simd2_gpu::cost::cuda_op_cost(op).total_slots(),
                    bytes: nf * nf * nf * 8.0 / 32.0,
                    launches: 2 * n as u64,
                    efficiency: eff,
                })
            }
            // Kruskal: parallel sort + contention-limited union phase.
            AppKind::Mst => {
                let edges = self.mst_edges(n);
                let sort = edges * (edges.log2().max(1.0)) * 2.0e-10;
                let union_phase = edges * 5.0e-9;
                Seconds(30.0 * self.gpu.config().kernel_launch_seconds + sort + union_phase)
            }
            // cuBool: boolean closure by repeated squaring on CUDA cores
            // (with its own convergence checking), or/and port hazard and
            // all.
            AppKind::Gtc | AppKind::StreamingBfs => {
                let iters = self.iterations(app, n, ClosureAlgorithm::Leyzorek, true) as f64;
                self.gpu.kernel_time(&KernelProfile {
                    element_steps: iters * nf * nf * nf,
                    slots_per_step: simd2_gpu::cost::cuda_op_cost(OpKind::OrAnd).total_slots(),
                    bytes: iters * nf * nf * 8.0,
                    launches: 2 * iters as u64,
                    efficiency: eff,
                })
            }
            // Brute-force distance scan + in-kernel selection.
            AppKind::Knn => {
                let scan = self.gpu.kernel_time(&KernelProfile {
                    element_steps: nf * nf * KNN_TIMING_DIMS as f64,
                    slots_per_step: simd2_gpu::cost::cuda_op_cost(OpKind::PlusNorm).total_slots(),
                    bytes: nf * KNN_TIMING_DIMS as f64 * 4.0 * (nf / 128.0),
                    launches: 1,
                    efficiency: eff,
                });
                scan + self.knn_select_time(n)
            }
        }
    }

    /// Time of the SIMD²-ized implementation at dimension `n` under the
    /// given configuration, with `iterations` closure iterations (use
    /// [`Self::iterations`] for the data-driven estimate).
    pub fn simd2_time(
        &self,
        app: AppKind,
        n: usize,
        iterations: usize,
        convergence: bool,
        config: Config,
    ) -> Seconds {
        let op = app.spec().op;
        let (m, nn, k) = match app {
            AppKind::Knn => (n, n, KNN_TIMING_DIMS),
            _ => (n, n, n),
        };
        let per_mmo = match config {
            Config::Baseline => unreachable!("baseline is priced by baseline_time"),
            Config::Simd2CudaCores => self.gpu.cuda_mmo_time(op, m, nn, k),
            Config::Simd2Units => self.gpu.simd2_mmo_time(op, m, nn, k),
            Config::Simd2SparseUnits => self.gpu.sparse_simd2_mmo_time(op, m, nn, k),
        };
        let mut total = Seconds(per_mmo.get() * iterations as f64);
        if convergence && app != AppKind::Knn {
            let check = self.gpu.elementwise_time(n * n, 2.0);
            total = total + Seconds(check.get() * iterations as f64);
        }
        // Application epilogues.
        match app {
            AppKind::Mst => {
                // Edge extraction: one pass over the bottleneck matrix.
                total = total + self.gpu.elementwise_time(n * n, 3.0);
            }
            AppKind::Knn => {
                total = total + self.knn_select_time(n);
            }
            _ => {}
        }
        total
    }

    /// Prices a *recorded* op sequence — a plan's shape-level
    /// [`MmoTrace`] steps — under the given configuration: the
    /// trace-driven counterpart of [`Self::simd2_time`]. Where the
    /// analytic path assumes `iterations` uniform `n×n×n` steps, this
    /// one prices each recorded step at its own geometry (e.g. KNN's
    /// single rectangular `addnorm`), charges one convergence check per
    /// closure step, and sizes the application epilogues from the final
    /// step's output shape. On uniform closure traces the two paths
    /// agree to float round-off.
    ///
    /// # Panics
    ///
    /// Panics if `config` is [`Config::Baseline`] (the baseline is
    /// priced by [`Self::baseline_time`]).
    pub fn simd2_time_of_trace(
        &self,
        app: AppKind,
        traces: &[MmoTrace],
        convergence: bool,
        config: Config,
    ) -> Seconds {
        let mut total = Seconds(0.0);
        for t in traces {
            let per_mmo = match config {
                Config::Baseline => unreachable!("baseline is priced by baseline_time"),
                Config::Simd2CudaCores => self.gpu.cuda_mmo_time(t.op, t.m, t.n, t.k),
                Config::Simd2Units => self.gpu.simd2_mmo_time(t.op, t.m, t.n, t.k),
                Config::Simd2SparseUnits => self.gpu.sparse_simd2_mmo_time(t.op, t.m, t.n, t.k),
            };
            total = total + per_mmo;
            if convergence && app != AppKind::Knn {
                total = total + self.gpu.elementwise_time(t.m * t.n, 2.0);
            }
        }
        // Application epilogues, sized from the final output geometry.
        if let Some(last) = traces.last() {
            match app {
                AppKind::Mst => total = total + self.gpu.elementwise_time(last.m * last.n, 3.0),
                AppKind::Knn => total = total + self.knn_select_time(last.m),
                _ => {}
            }
        }
        total
    }

    /// Time of the SIMD²-ized implementation on a *standalone* SIMD²
    /// accelerator (paper §3.1's rejected alternative): the matrix units
    /// sit across a host interconnect with no collocated scalar/vector
    /// cores, so every convergence check round-trips the result matrix to
    /// the host (PCIe both ways) — the fine-grained data exchange that
    /// GPU integration gets for free becomes the bottleneck.
    pub fn standalone_simd2_time(
        &self,
        app: AppKind,
        n: usize,
        iterations: usize,
        convergence: bool,
    ) -> Seconds {
        let op = app.spec().op;
        let (m, nn, k) = match app {
            AppKind::Knn => (n, n, KNN_TIMING_DIMS),
            _ => (n, n, n),
        };
        let per_mmo = self.gpu.simd2_mmo_time(op, m, nn, k);
        let mut total = Seconds(per_mmo.get() * iterations as f64);
        if convergence && app != AppKind::Knn {
            // D and D' ship to the host each iteration; the host compares.
            let bytes = (2 * n * n * 4) as u64;
            let round_trip = self.gpu.transfer_time(bytes);
            total = total + Seconds(round_trip.get() * iterations as f64);
        }
        match app {
            // Epilogues also run host-side after one more transfer.
            AppKind::Mst | AppKind::Knn => {
                total = total + self.gpu.transfer_time((n * n * 4) as u64);
            }
            _ => {}
        }
        total
    }

    /// Data-driven closure iteration count. Convergence-checked runs stop
    /// once the longest *useful* relaxation chain is covered, so the count
    /// is derived from the workload graph's structure — the hop diameter
    /// for the strongly-connected workloads, the DAG depth for APLP and
    /// MINRP — which is computable in `O(V + E)` even at the paper's
    /// 16384-vertex scale. The structural estimate is validated against
    /// exact functional runs in the test-suite.
    pub fn iterations(
        &self,
        app: AppKind,
        n: usize,
        algorithm: ClosureAlgorithm,
        convergence: bool,
    ) -> usize {
        if app == AppKind::Knn {
            return 1; // single addnorm pass, no closure
        }
        if !convergence {
            return algorithm.worst_case_iterations(n);
        }
        let hops = hop_estimate(app, n).max(1);
        let estimate = match algorithm {
            // Path lengths double each squaring; one extra iteration
            // observes the fixed point.
            ClosureAlgorithm::Leyzorek => (hops.max(2) as f64).log2().ceil() as usize + 2,
            // One edge per iteration; one extra to observe the fixed point.
            ClosureAlgorithm::BellmanFord => hops + 1,
        };
        estimate.min(algorithm.worst_case_iterations(n))
    }

    /// Figure 11 speedup of `config` over the baseline at dimension `n`.
    pub fn speedup(&self, app: AppKind, n: usize, config: Config) -> f64 {
        let alg = ClosureAlgorithm::Leyzorek;
        let iters = self.iterations(app, n, alg, true);
        let t = self.simd2_time(app, n, iters, true, config);
        let baseline = self.baseline_time(app, n);
        let speedup = t.speedup_over(baseline);
        if self.tracer.enabled() {
            APP_PHASES.add(1);
            self.tracer.instant(
                span::APP_PHASE,
                &[
                    field("app", app.spec().label),
                    field("n", n),
                    field("config", config.label()),
                    field("iterations", iters),
                    field("baseline_s", baseline.get()),
                    field("simd2_s", t.get()),
                    field("speedup", speedup),
                ],
            );
        }
        speedup
    }

    fn mst_edges(&self, n: usize) -> f64 {
        // The MST workload has ~10% extra density over its spanning tree.
        (n as f64) * (n as f64) * 0.1
    }

    fn knn_select_time(&self, n: usize) -> Seconds {
        // Per-row top-k selection over the n×n distance matrix.
        self.gpu.elementwise_time(n * n, 8.0)
    }
}

/// Longest useful relaxation chain of the application's workload at
/// dimension `n`: the exact DAG depth for APLP/MINRP, a BFS-sampled hop
/// diameter (with a weighted-path stretch margin for the weighted
/// algebras) for the rest.
pub fn hop_estimate(app: AppKind, n: usize) -> usize {
    let seed = 0xD15C0 ^ n as u64;
    match app {
        AppKind::Aplp => dag_depth(&aplp::generate(n, seed)),
        AppKind::MinRp => dag_depth(&paths::generate_minrp(n, seed)),
        // Streaming workloads share the structural profile of their
        // static counterparts (out-degree-4/8 G(n,p) plus a Hamiltonian
        // backbone); insertions only shorten chains, so the static
        // diameter is a safe upper estimate.
        AppKind::Apsp | AppKind::StreamingApsp => 2 * bfs_diameter(&apsp::generate(n, seed)),
        AppKind::Mcp => 4 * bfs_diameter(&paths::generate_mcp(n, seed)), // widest paths stretch far
        AppKind::MaxRp => 2 * bfs_diameter(&paths::generate_maxrp(n, seed)),
        AppKind::Gtc | AppKind::StreamingBfs => bfs_diameter(&gtc::generate(n, seed)),
        AppKind::Mst => 4 * bfs_diameter(&mst::generate(n, 0.1, seed)), // bottleneck paths stretch far
        AppKind::Knn => 1,
    }
}

/// Exact longest path (in hops) of a DAG whose edges run from lower to
/// higher vertex index.
fn dag_depth(g: &simd2_matrix::Graph) -> usize {
    let n = g.vertex_count();
    let adj = g.out_neighbors();
    let mut depth = vec![0usize; n];
    let mut best = 0;
    for u in 0..n {
        for &(v, _) in &adj[u] {
            if depth[u] + 1 > depth[v] {
                depth[v] = depth[u] + 1;
                best = best.max(depth[v]);
            }
        }
    }
    best
}

/// Hop-diameter estimate: the largest finite BFS eccentricity over a few
/// sampled start vertices (edge directions respected).
fn bfs_diameter(g: &simd2_matrix::Graph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let adj = g.out_neighbors();
    let mut best = 0usize;
    for start in [0, n / 3, (2 * n) / 3] {
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    best = best.max(dist[v]);
                    queue.push_back(v);
                }
            }
        }
    }
    best
}

/// Runs the functional application at dimension `n` through the
/// registry-driven [`harness`] and hands back the validated run — the
/// §5.1 statistics-collection pass. The returned [`AppRun`] carries the
/// recorded plan, whose [`traces`](simd2::Plan::traces) feed
/// [`AppTiming::simd2_time_of_trace`] and the GPU pipeline replay.
pub fn measured_run<B: Backend>(
    backend: &mut B,
    app: AppKind,
    n: usize,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> AppRun {
    let seed = 0xD15C0 ^ n as u64;
    harness::run_app(backend, app, n, seed, algorithm, convergence)
}

/// Closure iteration count of a functional run on the fp32 reference
/// backend (see [`measured_run`]).
pub fn measured_iterations(
    app: AppKind,
    n: usize,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> usize {
    let mut be = ReferenceBackend::new();
    measured_iterations_on(&mut be, app, n, algorithm, convergence)
}

/// Like [`measured_iterations`] but through a caller-chosen backend.
pub fn measured_iterations_on<B: Backend>(
    backend: &mut B,
    app: AppKind,
    n: usize,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> usize {
    measured_run(backend, app, n, algorithm, convergence).iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_gpu::geomean;
    use simd2_matrix::gen::InputScale;

    fn model() -> AppTiming {
        AppTiming::new(Gpu::default())
    }

    #[test]
    fn fig11_simd2_units_beat_every_baseline_at_small_scale() {
        let m = model();
        for app in AppKind::all() {
            let n = app.dimension(InputScale::Small);
            let s = m.speedup(app, n, Config::Simd2Units);
            assert!(s > 1.0, "{app:?}: {s}");
        }
    }

    #[test]
    fn fig11_gmean_lands_in_paper_band() {
        // Paper: geometric mean 10.76×–13.96× across the eight apps.
        let m = model();
        for scale in [InputScale::Small, InputScale::Medium] {
            let speedups: Vec<f64> = AppKind::all()
                .iter()
                .map(|&app| m.speedup(app, app.dimension(scale), Config::Simd2Units))
                .collect();
            let g = geomean(&speedups);
            assert!(
                (7.0..=18.0).contains(&g),
                "{scale:?}: gmean {g} of {speedups:?}"
            );
        }
    }

    #[test]
    fn fig11_peak_speedup_is_about_38x() {
        let m = model();
        let mut best = 0.0f64;
        for app in AppKind::all() {
            for scale in InputScale::all() {
                let s = m.speedup(app, app.dimension(scale), Config::Simd2Units);
                best = best.max(s);
            }
        }
        assert!((25.0..=55.0).contains(&best), "peak {best}");
    }

    #[test]
    fn fig11_cuda_core_configuration_splits_as_reported() {
        // §6.3: APSP, APLP, MST, MAXRP, MINRP slow down without SIMD²
        // units; MCP, GTC, KNN still beat their baselines.
        let m = model();
        for app in [AppKind::Apsp, AppKind::MaxRp, AppKind::MinRp, AppKind::Aplp] {
            let n = app.dimension(InputScale::Small);
            let s = m.speedup(app, n, Config::Simd2CudaCores);
            assert!(s < 1.05, "{app:?} should not win on CUDA cores: {s}");
        }
        for app in [AppKind::Mcp, AppKind::Gtc, AppKind::Knn] {
            let n = app.dimension(InputScale::Small);
            let s = m.speedup(app, n, Config::Simd2CudaCores);
            assert!(s > 1.0, "{app:?} should win on CUDA cores: {s}");
        }
    }

    #[test]
    fn knn_cuda_core_speedup_is_bounded_by_6_55() {
        let m = model();
        for scale in InputScale::all() {
            let n = AppKind::Knn.dimension(scale);
            let s = m.speedup(AppKind::Knn, n, Config::Simd2CudaCores);
            assert!((1.5..=6.55).contains(&s), "{scale:?}: {s}");
        }
    }

    #[test]
    fn aplp_degrades_as_inputs_grow() {
        let m = model();
        let small = m.speedup(
            AppKind::Aplp,
            AppKind::Aplp.dimension(InputScale::Small),
            Config::Simd2Units,
        );
        let large = m.speedup(
            AppKind::Aplp,
            AppKind::Aplp.dimension(InputScale::Large),
            Config::Simd2Units,
        );
        assert!(large < small, "APLP: {small} -> {large}");
    }

    #[test]
    fn mst_degrades_as_inputs_grow() {
        let m = model();
        let small = m.speedup(
            AppKind::Mst,
            AppKind::Mst.dimension(InputScale::Small),
            Config::Simd2Units,
        );
        let large = m.speedup(
            AppKind::Mst,
            AppKind::Mst.dimension(InputScale::Large),
            Config::Simd2Units,
        );
        assert!(large < small, "MST: {small} -> {large}");
        assert!(small > 1.0);
    }

    #[test]
    fn fig13_sparse_units_add_1_6_to_2_05x() {
        let m = model();
        for app in AppKind::all() {
            let n = app.dimension(InputScale::Medium);
            let iters = m.iterations(app, n, ClosureAlgorithm::Leyzorek, true);
            let dense = m.simd2_time(app, n, iters, true, Config::Simd2Units);
            let sparse = m.simd2_time(app, n, iters, true, Config::Simd2SparseUnits);
            let gain = sparse.speedup_over(dense);
            assert!((1.2..=2.05).contains(&gain), "{app:?}: {gain}");
        }
    }

    #[test]
    fn fig12_worst_case_iteration_counts() {
        let m = model();
        // Without convergence checks, Leyzorek runs log₂|V| iterations and
        // Bellman-Ford |V|−1.
        assert_eq!(
            m.iterations(AppKind::Apsp, 4096, ClosureAlgorithm::Leyzorek, false),
            12
        );
        assert_eq!(
            m.iterations(AppKind::Apsp, 4096, ClosureAlgorithm::BellmanFord, false),
            4095
        );
    }

    #[test]
    fn measured_iterations_are_small_for_diameter_driven_apps() {
        for app in [AppKind::Apsp, AppKind::Mcp, AppKind::Gtc] {
            let iters = measured_iterations(app, 96, ClosureAlgorithm::Leyzorek, true);
            assert!((1..=6).contains(&iters), "{app:?}: {iters}");
        }
    }

    #[test]
    fn dag_apps_need_more_iterations_than_diameter_apps() {
        let aplp = measured_iterations(AppKind::Aplp, 128, ClosureAlgorithm::Leyzorek, true);
        let apsp = measured_iterations(AppKind::Apsp, 128, ClosureAlgorithm::Leyzorek, true);
        assert!(aplp > apsp, "APLP {aplp} vs APSP {apsp}");
    }

    #[test]
    fn structural_estimate_upper_bounds_measured_iterations() {
        // The structural estimate must be a (tight-ish) upper bound on the
        // exact functional count — never an underestimate, never more
        // than ~3 iterations loose at host-tractable sizes.
        let m = model();
        let alg = ClosureAlgorithm::Leyzorek;
        for app in [
            AppKind::Apsp,
            AppKind::Aplp,
            AppKind::Mcp,
            AppKind::Gtc,
            AppKind::Mst,
        ] {
            let n = 128;
            let measured = measured_iterations(app, n, alg, true);
            let estimated = m.iterations(app, n, alg, true);
            assert!(
                estimated >= measured && estimated <= measured + 3,
                "{app:?} {alg:?}: measured {measured}, estimated {estimated}"
            );
        }
    }

    #[test]
    fn standalone_accelerator_pays_for_host_round_trips() {
        // §3.1: collocating SIMD² units with GPU cores enables the
        // fine-grained exchanges convergence checks need; a standalone
        // accelerator must ship matrices over PCIe every iteration.
        let m = model();
        for app in [AppKind::Apsp, AppKind::Gtc] {
            let n = app.dimension(InputScale::Small);
            let iters = m.iterations(app, n, ClosureAlgorithm::Leyzorek, true);
            let integrated = m.simd2_time(app, n, iters, true, Config::Simd2Units);
            let standalone = m.standalone_simd2_time(app, n, iters, true);
            assert!(
                standalone.get() > 1.5 * integrated.get(),
                "{app:?}: standalone {} vs integrated {}",
                standalone.get(),
                integrated.get()
            );
        }
        // Without convergence checks the gap closes (pure streaming).
        let n = AppKind::Apsp.dimension(InputScale::Small);
        let iters = m.iterations(AppKind::Apsp, n, ClosureAlgorithm::Leyzorek, false);
        let integrated = m.simd2_time(AppKind::Apsp, n, iters, false, Config::Simd2Units);
        let standalone = m.standalone_simd2_time(AppKind::Apsp, n, iters, false);
        assert!((standalone.get() / integrated.get()) < 1.05);
    }

    #[test]
    fn config_labels() {
        assert_eq!(Config::Baseline.label(), "baseline");
        assert!(Config::Simd2SparseUnits.label().contains("sparse"));
    }

    #[test]
    fn speedup_emits_one_app_phase_event_per_evaluation() {
        let ring = simd2_trace::RingSink::shared();
        let m = model().with_tracer(Tracer::to(ring.clone()));
        let n = AppKind::Apsp.dimension(InputScale::Small);
        let s = m.speedup(AppKind::Apsp, n, Config::Simd2Units);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.span, span::APP_PHASE);
        assert_eq!(ev.str_value("app"), Some("APSP"));
        assert_eq!(ev.u64("n"), Some(n as u64));
        assert_eq!(ev.str_value("config"), Some("SIMD2 w/ SIMD2 units"));
        assert_eq!(ev.f64("speedup"), Some(s));
        let baseline = ev.f64("baseline_s").unwrap();
        let simd2 = ev.f64("simd2_s").unwrap();
        assert!((baseline / simd2 - s).abs() < 1e-12);
    }

    #[test]
    fn untraced_model_emits_nothing() {
        let ring = simd2_trace::RingSink::shared();
        let m = model();
        let n = AppKind::Gtc.dimension(InputScale::Small);
        m.speedup(AppKind::Gtc, n, Config::Simd2Units);
        assert!(ring.is_empty());
    }

    #[test]
    fn trace_pricing_matches_the_analytic_model_on_uniform_closures() {
        // `simd2_time` assumes `iterations` uniform n×n×n steps; feeding
        // `simd2_time_of_trace` exactly that trace must reproduce it.
        let m = model();
        let alg = ClosureAlgorithm::Leyzorek;
        for config in [
            Config::Simd2CudaCores,
            Config::Simd2Units,
            Config::Simd2SparseUnits,
        ] {
            for app in [AppKind::Apsp, AppKind::Gtc, AppKind::Mst] {
                let n = 256;
                let iters = m.iterations(app, n, alg, true);
                let traces = vec![MmoTrace::new(app.spec().op, n, n, n); iters];
                let analytic = m.simd2_time(app, n, iters, true, config).get();
                let traced = m.simd2_time_of_trace(app, &traces, true, config).get();
                assert!(
                    (traced - analytic).abs() <= 1e-9 * analytic,
                    "{app:?} {config:?}: {traced} vs {analytic}"
                );
            }
            // KNN: one rectangular addnorm plus the selection epilogue.
            let n = 1024;
            let traces = [MmoTrace::new(OpKind::PlusNorm, n, n, KNN_TIMING_DIMS)];
            let analytic = m.simd2_time(AppKind::Knn, n, 1, true, config).get();
            let traced = m
                .simd2_time_of_trace(AppKind::Knn, &traces, true, config)
                .get();
            assert!(
                (traced - analytic).abs() <= 1e-9 * analytic,
                "KNN {config:?}: {traced} vs {analytic}"
            );
        }
    }

    #[test]
    fn recorded_plan_prices_and_replays_through_the_gpu_model() {
        // End-to-end: functional run → recorded plan → shape traces →
        // (a) timing-model pricing, (b) cycle-level pipeline replay.
        let mut be = simd2::TiledBackend::new();
        let run = measured_run(&mut be, AppKind::Apsp, 48, ClosureAlgorithm::Leyzorek, true);
        assert!(run.passed());
        let traces = run.plan.traces();
        assert_eq!(traces.len(), run.iterations, "one trace per closure step");
        let m = model();
        let t = m.simd2_time_of_trace(AppKind::Apsp, &traces, true, Config::Simd2Units);
        assert!(t.get() > 0.0);
        // The pipeline replay issues exactly the tile-op volume the
        // functional backend counted while recording.
        let stats = simd2_gpu::simulate_trace(&simd2_gpu::SmPipeline::new(), &traces, 4);
        assert_eq!(stats.mmos, be.op_count().tile_mmos);
        assert!(stats.cycles > 0);
    }
}
