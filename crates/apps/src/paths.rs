//! The transitive-closure path family: maximum capacity (MCP), maximum
//! reliability (MAXRP) and minimum reliability (MINRP) paths.
//!
//! The paper pairs all three with the CUDA-FW baseline, "apply\[ing\]
//! different operations in each iteration of their algorithms"; the SIMD²
//! kernels just switch the instruction to max-min, max-mul or min-mul.

use simd2::solve::{self, ClosureAlgorithm, ClosureResult};
use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{gen, Graph, Matrix};
use simd2_semiring::OpKind;

/// Maximum-capacity-path workload: strongly connected digraph with
/// fp16-exact integer link capacities.
pub fn generate_mcp(n: usize, seed: u64) -> Graph {
    let p = (8.0 / n as f64).min(0.5);
    let mut g = gen::integer_weight_graph(n, p, 100, seed);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, 10.0);
    }
    g
}

/// Reliability workload (shared by MAXRP): strongly connected digraph
/// with link success probabilities in `(0.5, 1.0)`.
pub fn generate_maxrp(n: usize, seed: u64) -> Graph {
    let p = (8.0 / n as f64).min(0.5);
    gen::reliability_graph(n, p, seed)
}

/// MINRP workload: reliability weights on a DAG. Minimum reliability over
/// *walks* is degenerate on cyclic graphs (every extra factor < 1 lowers
/// the product), so the problem is posed on acyclic networks where all
/// solvers agree on the same well-defined optimum.
pub fn generate_minrp(n: usize, seed: u64) -> Graph {
    let p = (16.0 / n as f64).min(0.5);
    gen::random_dag(n, p, 0.0, 1.0, seed)
        .map_weights(|w| simd2_semiring::precision::quantize_f16(0.5 + 0.5 * w.clamp(0.0, 0.999)))
}

/// Baseline: Floyd–Warshall transitive closure generalised over the
/// algebra (the CUDA-FW structure).
pub fn baseline(op: OpKind, g: &Graph) -> Matrix {
    solve::floyd_warshall_closure(op, &g.adjacency(op))
}

/// SIMD²-ized solver: closure through the given backend with the
/// application's operation.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(
    backend: &mut B,
    op: OpKind,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> ClosureResult {
    solve::closure(backend, op, &g.adjacency(op), algorithm, convergence).expect("square adjacency")
}

/// Like [`simd2`], but also records the solve's MMO sequence as a
/// replayable [`Plan`].
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    op: OpKind,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (ClosureResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let result = simd2(&mut rec, op, g, algorithm, convergence);
    (result, rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn mcp_capacity_properties() {
        let g = generate_mcp(24, 7);
        let cap = baseline(OpKind::MaxMin, &g);
        // A path's capacity is at least that of the best direct edge.
        let adj = g.adjacency(OpKind::MaxMin);
        for s in 0..24 {
            for d in 0..24 {
                if s != d {
                    assert!(cap[(s, d)] >= adj[(s, d)]);
                }
            }
        }
    }

    #[test]
    fn maxrp_probabilities_stay_in_unit_interval() {
        let g = generate_maxrp(20, 11);
        let rel = baseline(OpKind::MaxMul, &g);
        for s in 0..20 {
            for d in 0..20 {
                if s != d {
                    let r = rel[(s, d)];
                    assert!((0.0..=1.0).contains(&r), "({s},{d}): {r}");
                }
            }
        }
    }

    #[test]
    fn minrp_longer_paths_only_lower_reliability() {
        let g = generate_minrp(20, 17);
        let rel = baseline(OpKind::MinMul, &g);
        let adj = g.adjacency(OpKind::MinMul);
        for s in 0..20 {
            for d in 0..20 {
                if s != d && adj[(s, d)] != f32::INFINITY {
                    assert!(rel[(s, d)] <= adj[(s, d)], "({s},{d})");
                }
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(generate_mcp(16, 1), generate_mcp(16, 1));
        assert_eq!(generate_maxrp(16, 1), generate_maxrp(16, 1));
        assert_eq!(generate_minrp(16, 1), generate_minrp(16, 1));
    }
}
