//! Registry-driven application harness: one generate → baseline →
//! record → validate pipeline for all eight Figure-11 applications.
//!
//! Every consumer that used to hand-roll this loop — the per-app unit
//! tests, the `validate_apps` sweep, the timing model's §5.1
//! statistics-collection pass — now routes through [`run_app`], so the
//! per-app dispatch (which generator, which baseline oracle, which diff
//! metric) exists in exactly one place. Each run executes the SIMD²-ized
//! algorithm through a recording [`PlanBuilder`], so the validated run's
//! exact MMO sequence comes back as a replayable [`Plan`] alongside the
//! correctness verdict.

use simd2::solve::ClosureAlgorithm;
use simd2::validate::compare_outputs;
use simd2::{Backend, Plan};
use simd2_semiring::OpKind;

use crate::registry::AppKind;
use crate::{aplp, apsp, gtc, knn, mst, paths, streaming};

/// Extra edge density (beyond the spanning backbone) of the MST
/// workload, shared by the harness and the timing model's hop estimate.
pub const MST_EXTRA_DENSITY: f64 = 0.1;

/// One functional application run: the §5.1 validation verdict, the
/// closure statistics, and the recorded plan.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// The application that ran.
    pub app: AppKind,
    /// Diff metric vs the baseline algorithm: max absolute output
    /// difference (for MST, weight error plus an edge-set mismatch flag;
    /// for KNN, `1 − recall`).
    pub diff: f32,
    /// Closure iterations executed (`1` for KNN's single pass).
    pub iterations: usize,
    /// The MMO sequence the run executed, as a replayable plan.
    pub plan: Plan,
}

impl AppRun {
    /// Whether [`diff`](Self::diff) is within the app's registry
    /// tolerance ([`AppSpec::tolerance`](crate::AppSpec)).
    pub fn passed(&self) -> bool {
        self.diff <= self.app.spec().tolerance
    }
}

/// Runs `app` at dimension `n` through `backend`: generates the seeded
/// workload, computes the baseline oracle, executes the SIMD²-ized
/// algorithm through a recording plan builder, and compares the outputs.
///
/// The closure-family apps honour `algorithm`/`convergence`; KNN runs
/// its single `addnorm` pass regardless.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn run_app<B: Backend>(
    backend: &mut B,
    app: AppKind,
    n: usize,
    seed: u64,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> AppRun {
    let (diff, iterations, plan) = match app {
        AppKind::Apsp => {
            let g = apsp::generate(n, seed);
            let want = apsp::baseline(&g);
            let (r, plan) = apsp::record(backend, &g, algorithm, convergence);
            (
                compare_outputs("apsp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::Aplp => {
            let g = aplp::generate(n, seed);
            let want = aplp::baseline(&g);
            let (r, plan) = aplp::record(backend, &g, algorithm, convergence);
            (
                compare_outputs("aplp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::Mcp => {
            let g = paths::generate_mcp(n, seed);
            let want = paths::baseline(OpKind::MaxMin, &g);
            let (r, plan) = paths::record(backend, OpKind::MaxMin, &g, algorithm, convergence);
            (
                compare_outputs("mcp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::MaxRp => {
            let g = paths::generate_maxrp(n, seed);
            let want = paths::baseline(OpKind::MaxMul, &g);
            let (r, plan) = paths::record(backend, OpKind::MaxMul, &g, algorithm, convergence);
            (
                compare_outputs("maxrp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::MinRp => {
            let g = paths::generate_minrp(n, seed);
            let want = paths::baseline(OpKind::MinMul, &g);
            let (r, plan) = paths::record(backend, OpKind::MinMul, &g, algorithm, convergence);
            (
                compare_outputs("minrp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::Mst => {
            let g = mst::generate(n, MST_EXTRA_DENSITY, seed);
            let want = mst::baseline(&g);
            let (got, r, plan) = mst::record(backend, &g, algorithm, convergence);
            let diff = (want.total_weight - got.total_weight).abs() as f32
                + if want.edges == got.edges { 0.0 } else { 1.0 };
            (diff, r.stats.iterations, plan)
        }
        AppKind::Gtc => {
            let g = gtc::generate(n, seed);
            let want = gtc::baseline(&g);
            let (r, plan) = gtc::record(backend, &g, algorithm, convergence);
            (
                compare_outputs("gtc", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                plan,
            )
        }
        AppKind::Knn => {
            let pts = knn::generate(n, seed);
            let want = knn::baseline(&pts, knn::K);
            let (got, plan) = knn::record(backend, &pts, knn::K);
            ((1.0 - knn::recall(&want, &got)) as f32, 1, plan)
        }
        AppKind::StreamingApsp | AppKind::StreamingBfs => {
            let op = app.spec().op;
            let w = streaming::generate(op, n, streaming::DEFAULT_BATCHES, seed);
            let want = streaming::baseline(&w);
            let (got, stats, plan) = streaming::record(backend, &w);
            (
                compare_outputs(app.spec().label, &want, &got, 0.0).max_abs_diff,
                stats.steps,
                plan,
            )
        }
    };
    AppRun {
        app,
        diff,
        iterations,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::{ReferenceBackend, TiledBackend};
    use simd2::{Parallelism, PlanExecutor};

    const N: usize = 48;
    const SEED: u64 = 42;

    #[test]
    fn every_app_validates_on_reference_and_tiled_backends() {
        // The former per-app `matches_baseline` / `bit_exact_on_units`
        // test pairs, as one registry sweep: fp32 reference backend with
        // both closure algorithms, fp16 tiled backend with Leyzorek.
        for app in AppKind::all() {
            for alg in [ClosureAlgorithm::BellmanFord, ClosureAlgorithm::Leyzorek] {
                let run = run_app(&mut ReferenceBackend::new(), app, N, SEED, alg, true);
                assert!(run.passed(), "{app:?} {alg:?} fp32: diff {}", run.diff);
            }
            let run = run_app(
                &mut TiledBackend::new(),
                app,
                N,
                SEED,
                ClosureAlgorithm::Leyzorek,
                true,
            );
            assert!(run.passed(), "{app:?} fp16: diff {}", run.diff);
            assert_eq!(run.plan.step_count(), run.iterations, "{app:?}");
        }
    }

    #[test]
    fn streaming_apps_validate_and_record_sparse_plans() {
        for app in AppKind::streaming() {
            let run = run_app(
                &mut TiledBackend::new(),
                app,
                N,
                SEED,
                ClosureAlgorithm::Leyzorek,
                true,
            );
            assert!(run.passed(), "{app:?}: diff {}", run.diff);
            assert_eq!(run.plan.step_count(), run.iterations, "{app:?}");
            assert!(
                run.plan.has_sparse_slots(),
                "{app:?} must record CSR delta declarations"
            );
        }
    }

    #[test]
    fn recording_is_observationally_identical_to_eager_execution() {
        let g = apsp::generate(32, 7);
        let mut eager_be = TiledBackend::new();
        let eager = apsp::simd2(&mut eager_be, &g, ClosureAlgorithm::Leyzorek, true);
        let mut rec_be = TiledBackend::new();
        let (recorded, plan) = apsp::record(&mut rec_be, &g, ClosureAlgorithm::Leyzorek, true);
        assert_eq!(eager.closure, recorded.closure);
        assert_eq!(eager.stats, recorded.stats);
        assert_eq!(eager_be.op_count(), rec_be.op_count());
        // Replaying the plan lands on the same closure bit-for-bit (the
        // solver returns its final relaxation output verbatim).
        let replay = PlanExecutor::new()
            .run(&plan, &mut TiledBackend::new())
            .expect("recorded plans replay");
        assert_eq!(replay.final_output(), Some(&recorded.closure));
    }

    #[test]
    fn every_apps_plan_replays_bit_identically() {
        for app in AppKind::all() {
            let mut rec_be = TiledBackend::new();
            let run = run_app(&mut rec_be, app, 32, 7, ClosureAlgorithm::Leyzorek, true);
            assert!(!run.plan.is_empty(), "{app:?}");
            // Sequential replay reproduces the recorded work exactly.
            let mut seq = TiledBackend::new();
            let sr = PlanExecutor::new()
                .run(&run.plan, &mut seq)
                .expect("replay");
            assert_eq!(seq.op_count(), rec_be.op_count(), "{app:?}");
            // Batched replay on a worker pool does not change a bit.
            let mut bat = TiledBackend::with_parallelism(Parallelism::Threads(4));
            let br = PlanExecutor::batched()
                .run(&run.plan, &mut bat)
                .expect("batched replay");
            assert_eq!(bat.op_count(), rec_be.op_count(), "{app:?}");
            for step in 0..run.plan.step_count() {
                assert_eq!(
                    sr.step_output(step),
                    br.step_output(step),
                    "{app:?} #{step}"
                );
            }
            // The fp32 reference backend lowers the same plan too.
            PlanExecutor::new()
                .run(&run.plan, &mut ReferenceBackend::new())
                .expect("reference replay");
        }
    }
}
