//! Streaming graph updates — incremental closure maintenance with
//! sparse delta operands (the §6.5 sparsity story as a *workload*).
//!
//! A long-lived service rarely recomputes an all-pairs closure from
//! scratch: edges arrive in batches and the closure is *maintained*.
//! Each batch's delta adjacency `E` is extremely sparse (a handful of
//! new edges over `n²` cells), which is exactly the operand shape the
//! representation seam exists for: the update loop declares `E` under
//! [`OperandRepr::csr`] through [`Backend::mmo_ref`], so an eager run
//! can take a backend's CSR kernels and a recording run captures a
//! [`Plan`] whose slots carry the sparse declarations.
//!
//! # The update rule
//!
//! With `X` the current closure (diagonal at the combine identity) and
//! `E` the new-edge delta, each relaxation round executes two MMOs:
//!
//! ```text
//! T  = FILL ⊕ (X ⊗ E)     // best known path, then one new edge
//! X' = X    ⊕ (T ⊗ X)     // ... then the best known continuation
//! ```
//!
//! `T` is non-trivial only in the columns some new edge enters, so it
//! is redeclared CSR whenever it stays sparse. Round `t` covers every
//! path using up to `t` new edges (`X` keeps identity diagonals, so
//! shorter compositions are covered too); values move monotonically
//! under the reduction, hence the fixpoint is the closure of the
//! updated graph and the loop stops the first round `X'` equals `X`
//! bit for bit. Correctness is validated against a full
//! [`blocked_floyd_warshall`] recompute of the final graph.
//!
//! Two algebras are wired into the registry ([`AppKind::StreamingApsp`]
//! and [`AppKind::StreamingBfs`]): min-plus distance maintenance and
//! or-and reachability maintenance — the same two ends of the algebra
//! spectrum the static APSP/GTC apps cover.

use simd2::{Backend, MatrixRef, OperandRepr, Plan, PlanBuilder};
use simd2_matrix::{gen, Matrix};
use simd2_semiring::OpKind;

use crate::apsp::blocked_floyd_warshall;

/// Default number of insertion batches for registry-driven runs.
pub const DEFAULT_BATCHES: usize = 3;

/// Relaxation rounds after which a batch gives up (each round doubles
/// the new-edge count a path may use, so real workloads converge in
/// `O(log |E_new|)` rounds — the cap only guards against bugs).
pub const MAX_ROUNDS: usize = 64;

/// `T` is redeclared CSR when its density stays at or below this bound;
/// denser intermediates keep the dense datapath.
pub const DELTA_CSR_MAX_DENSITY: f64 = 0.25;

/// A streaming workload: a base graph plus a sequence of edge-insertion
/// batches, all in adjacency form under one path algebra.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingWorkload {
    /// The closure algebra (`MinPlus` or `OrAnd`).
    pub op: OpKind,
    /// Base adjacency (diagonal at the combine identity).
    pub base: Matrix,
    /// Per-batch delta adjacencies: new edge weights where an edge was
    /// inserted, the algebra's no-edge sentinel everywhere else.
    pub deltas: Vec<Matrix>,
}

impl StreamingWorkload {
    /// Problem dimension.
    pub fn dimension(&self) -> usize {
        self.base.rows()
    }

    /// Edges inserted across all batches (counted per non-sentinel
    /// delta cell).
    pub fn inserted_edges(&self) -> usize {
        let zero = self.op.no_edge_f32().expect("streaming op has no-edge");
        self.deltas
            .iter()
            .map(|d| d.as_slice().iter().filter(|&&v| v != zero).count())
            .sum()
    }

    /// The final adjacency with every batch folded in under the
    /// algebra's reduction (parallel edges resolve exactly like the
    /// graph generators resolve them).
    pub fn final_adjacency(&self) -> Matrix {
        let mut adj = self.base.clone();
        for delta in &self.deltas {
            for (cell, &e) in adj.as_mut_slice().iter_mut().zip(delta.as_slice()) {
                *cell = self.op.reduce_f32(*cell, e);
            }
        }
        adj
    }
}

/// splitmix64 — the deterministic stream the delta generator draws from.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Workload generator: a seeded base graph (average out-degree ≈ 4 plus
/// a Hamiltonian backbone so every pair is reachable) and `batches`
/// waves of `max(1, n/8)` random edge insertions.
///
/// Weights are small integers (backbone 4, inserted/base edges 1..=8),
/// so every finite min-plus distance stays an fp16-exact integer at the
/// dimensions the registry serves.
///
/// # Panics
///
/// Panics unless `op` is `MinPlus` or `OrAnd`.
pub fn generate(op: OpKind, n: usize, batches: usize, seed: u64) -> StreamingWorkload {
    assert!(
        matches!(op, OpKind::MinPlus | OpKind::OrAnd),
        "streaming workloads are defined for MinPlus and OrAnd, not {op}"
    );
    let zero = op.no_edge_f32().expect("path algebra");
    let p = (4.0 / n as f64).min(0.5);
    let mut g = match op {
        OpKind::MinPlus => gen::integer_weight_graph(n, p, 8, seed),
        _ => gen::gnp_graph(n, p, 1.0, 2.0, seed),
    };
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, 4.0);
    }
    let base = g.adjacency(op);
    let per_batch = (n / 8).max(1);
    let deltas = (0..batches)
        .map(|batch| {
            let mut delta = Matrix::filled(n, n, zero);
            let mut placed = 0;
            let mut draw = 0u64;
            while placed < per_batch {
                let h = mix(seed ^ mix(batch as u64 + 1) ^ draw);
                draw += 1;
                let s = (h % n as u64) as usize;
                let d = ((h >> 16) % n as u64) as usize;
                if s == d {
                    continue;
                }
                let w = match op {
                    OpKind::MinPlus => 1.0 + ((h >> 32) % 8) as f32,
                    _ => 1.0,
                };
                delta[(s, d)] = op.reduce_f32(delta[(s, d)], w);
                placed += 1;
            }
            delta
        })
        .collect();
    StreamingWorkload { op, base, deltas }
}

/// Baseline oracle: a full [`blocked_floyd_warshall`] recompute over
/// the final (post-insertion) adjacency — the "throw the stream away
/// and re-close" strategy the incremental loop must match exactly.
pub fn baseline(w: &StreamingWorkload) -> Matrix {
    blocked_floyd_warshall(w.op, &w.final_adjacency(), 32)
}

/// Counters from one streaming run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Insertion batches applied.
    pub batches: usize,
    /// MMOs spent closing the base graph (repeated squaring).
    pub closure_steps: usize,
    /// Relaxation rounds across all batches (two MMOs each).
    pub rounds: usize,
    /// Total MMOs executed (`closure_steps + 2 * rounds`).
    pub steps: usize,
    /// Whether every phase reached its bit-stable fixpoint within
    /// [`MAX_ROUNDS`].
    pub converged: bool,
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// SIMD²-ized streaming closure: closes the base graph by repeated
/// squaring, then folds in each insertion batch with the two-MMO delta
/// relaxation of the [module docs](self), declaring the delta (and any
/// sparse-enough intermediate) under [`OperandRepr::csr`].
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(backend: &mut B, w: &StreamingWorkload) -> (Matrix, StreamingStats) {
    let op = w.op;
    let zero = op.no_edge_f32().expect("streaming op has no-edge");
    let n = w.base.rows();
    let mut stats = StreamingStats {
        converged: true,
        ..StreamingStats::default()
    };

    // Phase 1: close the base graph (Leyzorek-style squaring; the
    // final confirming square doubles as the convergence witness).
    let mut x = w.base.clone();
    let mut settled = false;
    for _ in 0..MAX_ROUNDS {
        let next = backend.mmo(op, &x, &x, &x).expect("square operands");
        stats.closure_steps += 1;
        stats.steps += 1;
        let done = bits_equal(&next, &x);
        x = next;
        if done {
            settled = true;
            break;
        }
    }
    stats.converged &= settled;

    // Phase 2: stream the insertion batches.
    let fill = Matrix::filled(n, n, zero);
    let delta_repr = OperandRepr::csr(zero);
    for delta in &w.deltas {
        stats.batches += 1;
        let mut settled = false;
        for _ in 0..MAX_ROUNDS {
            // T = FILL ⊕ (X ⊗ E): finite only in columns a new edge
            // enters, so it usually stays CSR-worthy itself.
            let t = backend
                .mmo_ref(
                    op,
                    MatrixRef::dense(&x),
                    MatrixRef::new(delta, delta_repr),
                    MatrixRef::dense(&fill),
                )
                .expect("square operands");
            let t_repr = if simd2::repr::density(&t, zero) <= DELTA_CSR_MAX_DENSITY {
                delta_repr
            } else {
                OperandRepr::Dense
            };
            // X' = X ⊕ (T ⊗ X).
            let next = backend
                .mmo_ref(
                    op,
                    MatrixRef::new(&t, t_repr),
                    MatrixRef::dense(&x),
                    MatrixRef::dense(&x),
                )
                .expect("square operands");
            stats.rounds += 1;
            stats.steps += 2;
            let done = bits_equal(&next, &x);
            x = next;
            if done {
                settled = true;
                break;
            }
        }
        stats.converged &= settled;
    }
    (x, stats)
}

/// Like [`simd2`], but records the run's exact MMO sequence — sparse
/// declarations included — as a replayable [`Plan`].
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    w: &StreamingWorkload,
) -> (Matrix, StreamingStats, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let (x, stats) = simd2(&mut rec, w);
    (x, stats, rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::{ReferenceBackend, TiledBackend};
    use simd2::{Parallelism, PassPipeline, PlanExecutor};
    use simd2_sparse::SparseTiledBackend;

    fn assert_bits(tag: &str, got: &Matrix, want: &Matrix) {
        assert_eq!(got.shape(), want.shape(), "{tag}");
        for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{tag} cell {i}: {g} vs {w}");
        }
    }

    #[test]
    fn generator_is_deterministic_and_inserts_edges() {
        let a = generate(OpKind::MinPlus, 32, 3, 7);
        let b = generate(OpKind::MinPlus, 32, 3, 7);
        assert_eq!(a, b);
        assert_eq!(a.deltas.len(), 3);
        assert!(a.inserted_edges() >= 3, "{}", a.inserted_edges());
        assert_ne!(a, generate(OpKind::MinPlus, 32, 3, 8));
    }

    #[test]
    fn incremental_minplus_matches_a_full_recompute() {
        let w = generate(OpKind::MinPlus, 40, 3, 11);
        let want = baseline(&w);
        let (got, stats) = simd2(&mut ReferenceBackend::new(), &w);
        assert!(stats.converged);
        assert_eq!(stats.batches, 3);
        assert!(stats.rounds >= 3, "every batch runs at least one round");
        assert_bits("minplus", &got, &want);
    }

    #[test]
    fn incremental_orand_matches_a_full_recompute() {
        let w = generate(OpKind::OrAnd, 40, 3, 5);
        let want = baseline(&w);
        let (got, stats) = simd2(&mut ReferenceBackend::new(), &w);
        assert!(stats.converged);
        assert_bits("orand", &got, &want);
    }

    #[test]
    fn integer_weights_stay_exact_on_the_fp16_tiled_backend() {
        for op in [OpKind::MinPlus, OpKind::OrAnd] {
            let w = generate(op, 48, 3, 42);
            let want = baseline(&w);
            let (got, stats) = simd2(&mut TiledBackend::new(), &w);
            assert!(stats.converged, "{op}");
            assert_bits("tiled", &got, &want);
        }
    }

    #[test]
    fn recorded_plan_carries_sparse_slots_and_replays_everywhere() {
        let w = generate(OpKind::MinPlus, 40, 3, 9);
        let mut rec_be = TiledBackend::new();
        let (got, stats, plan) = record(&mut rec_be, &w);
        assert!(stats.converged);
        assert!(plan.has_sparse_slots(), "delta slots are CSR-declared");
        assert_eq!(plan.step_count(), stats.steps);

        // The recorded plan replays bit-identically on every backend
        // and dispatch shape — including the real CSR kernels.
        let mut targets: Vec<(&str, Box<dyn FnMut(&Plan) -> Matrix>)> = vec![
            (
                "tiled sequential",
                Box::new(|p: &Plan| {
                    PlanExecutor::new()
                        .run(p, &mut TiledBackend::new())
                        .expect("replay")
                        .into_final_output()
                        .expect("non-empty")
                }),
            ),
            (
                "tiled batched",
                Box::new(|p: &Plan| {
                    PlanExecutor::batched()
                        .run(
                            p,
                            &mut TiledBackend::with_parallelism(Parallelism::Threads(4)),
                        )
                        .expect("replay")
                        .into_final_output()
                        .expect("non-empty")
                }),
            ),
            (
                "sparse kernels",
                Box::new(|p: &Plan| {
                    PlanExecutor::new()
                        .run(p, &mut SparseTiledBackend::new())
                        .expect("replay")
                        .into_final_output()
                        .expect("non-empty")
                }),
            ),
        ];
        for (tag, run) in &mut targets {
            assert_bits(tag, &run(&plan), &got);
        }

        // The sparse pass pipeline may re-lower further inputs, but the
        // final output never moves a bit.
        let optimized = PassPipeline::sparse().run(plan).into_plan();
        for (tag, run) in &mut targets {
            assert_bits(&format!("optimized {tag}"), &run(&optimized), &got);
        }
    }

    #[test]
    fn sparse_backend_actually_takes_its_csr_kernels() {
        let w = generate(OpKind::MinPlus, 40, 2, 3);
        let mut be = SparseTiledBackend::new();
        let (got, _) = simd2(&mut be, &w);
        assert_bits("eager sparse", &got, &baseline(&w));
        let counts = be.sparse_count();
        assert!(
            counts.sparse_mmos > 0,
            "X ⊗ E must route through a compressed kernel: {counts:?}"
        );
        assert!(
            counts.skipped_terms > 0,
            "CSR execution skips annihilator terms: {counts:?}"
        );
    }
}
