//! Application registry — paper Table 4 as data.

use simd2_matrix::gen::InputScale;
use simd2_semiring::OpKind;

/// The eight benchmark applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// All-pairs shortest path.
    Apsp,
    /// All-pairs critical (longest) path.
    Aplp,
    /// Maximum capacity path.
    Mcp,
    /// Maximum reliability path.
    MaxRp,
    /// Minimum reliability path.
    MinRp,
    /// Minimum spanning tree / forest.
    Mst,
    /// Graph transitive closure.
    Gtc,
    /// K-nearest neighbours.
    Knn,
    /// Streaming all-pairs shortest path: min-plus closure maintenance
    /// under edge-insertion batches with CSR-declared deltas (not part
    /// of the Table 4 figure set — see [`AppKind::streaming`]).
    StreamingApsp,
    /// Streaming reachability (BFS-style or-and closure maintenance)
    /// under edge-insertion batches with CSR-declared deltas.
    StreamingBfs,
}

/// Static description of one application (a row of Table 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppSpec {
    /// The application.
    pub kind: AppKind,
    /// Short figure label.
    pub label: &'static str,
    /// Full name.
    pub full_name: &'static str,
    /// The SIMD² operation its kernel uses.
    pub op: OpKind,
    /// The baseline implementation it is compared against.
    pub baseline_source: &'static str,
    /// Base ("Small") input dimension from Table 4; Medium/Large are 2×/4×.
    pub small_dimension: usize,
    /// §5.1 validation tolerance on the app's diff metric (max absolute
    /// output difference, or `1 − recall` for KNN): the multiplicative
    /// algebras accumulate relative rounding error across path products,
    /// everything else is exact on these integer/boolean workloads.
    pub tolerance: f32,
}

impl AppKind {
    /// The eight Table 4 applications in figure order. The streaming
    /// workloads are deliberately *not* here: the figure sweeps, the
    /// timing model, and the validation harness iterate this set, and
    /// the paper's Table 4 has exactly eight rows.
    pub fn all() -> [AppKind; 8] {
        [
            AppKind::Apsp,
            AppKind::Aplp,
            AppKind::Mcp,
            AppKind::MaxRp,
            AppKind::MinRp,
            AppKind::Mst,
            AppKind::Gtc,
            AppKind::Knn,
        ]
    }

    /// The streaming-update workloads (beyond Table 4): closure
    /// maintenance under edge-insertion batches, exercising the sparse
    /// operand seam end to end.
    pub fn streaming() -> [AppKind; 2] {
        [AppKind::StreamingApsp, AppKind::StreamingBfs]
    }

    /// The Table 4 row for this application.
    pub fn spec(self) -> AppSpec {
        match self {
            AppKind::Apsp => AppSpec {
                kind: self,
                label: "APSP",
                full_name: "All Pair Shortest Path",
                op: OpKind::MinPlus,
                baseline_source: "ECL-APSP",
                small_dimension: 4096,
                tolerance: 0.0,
            },
            AppKind::Aplp => AppSpec {
                kind: self,
                label: "APLP",
                full_name: "All Pair Critical Path",
                op: OpKind::MaxPlus,
                baseline_source: "ECL-APSP",
                small_dimension: 4096,
                tolerance: 0.0,
            },
            AppKind::Mcp => AppSpec {
                kind: self,
                label: "MCP",
                full_name: "Maximum Capacity Path",
                op: OpKind::MaxMin,
                baseline_source: "CUDA-FW",
                small_dimension: 4096,
                tolerance: 0.0,
            },
            AppKind::MaxRp => AppSpec {
                kind: self,
                label: "MAXRP",
                full_name: "Maximum Reliability Path",
                op: OpKind::MaxMul,
                baseline_source: "CUDA-FW",
                small_dimension: 4096,
                tolerance: 0.02,
            },
            AppKind::MinRp => AppSpec {
                kind: self,
                label: "MINRP",
                full_name: "Minimum Reliability Path",
                op: OpKind::MinMul,
                baseline_source: "CUDA-FW",
                small_dimension: 4096,
                tolerance: 0.02,
            },
            AppKind::Mst => AppSpec {
                kind: self,
                label: "MST",
                full_name: "Minimum Spanning Tree",
                op: OpKind::MinMax,
                baseline_source: "CUDA MST (Kruskal)",
                small_dimension: 1024,
                tolerance: 0.0,
            },
            AppKind::Gtc => AppSpec {
                kind: self,
                label: "GTC",
                full_name: "Graph Transitive Closure",
                op: OpKind::OrAnd,
                baseline_source: "cuBool",
                small_dimension: 2048,
                tolerance: 0.0,
            },
            AppKind::Knn => AppSpec {
                kind: self,
                label: "KNN",
                full_name: "K-Nearest Neighbor",
                op: OpKind::PlusNorm,
                baseline_source: "kNN-CUDA",
                small_dimension: 4096,
                tolerance: 0.05,
            },
            AppKind::StreamingApsp => AppSpec {
                kind: self,
                label: "S-APSP",
                full_name: "Streaming All Pair Shortest Path",
                op: OpKind::MinPlus,
                baseline_source: "full FW recompute",
                small_dimension: 1024,
                tolerance: 0.0,
            },
            AppKind::StreamingBfs => AppSpec {
                kind: self,
                label: "S-BFS",
                full_name: "Streaming Reachability",
                op: OpKind::OrAnd,
                baseline_source: "full or-and recompute",
                small_dimension: 1024,
                tolerance: 0.0,
            },
        }
    }

    /// Problem dimension at an input scale.
    pub fn dimension(self, scale: InputScale) -> usize {
        scale.dimension(self.spec().small_dimension)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_eight_distinct_ops() {
        let ops: std::collections::HashSet<OpKind> =
            AppKind::all().iter().map(|a| a.spec().op).collect();
        assert_eq!(ops.len(), 8);
        assert!(
            !ops.contains(&OpKind::PlusMul),
            "GEMM itself is not a benchmark app"
        );
    }

    #[test]
    fn table4_scales() {
        assert_eq!(AppKind::Apsp.dimension(InputScale::Small), 4096);
        assert_eq!(AppKind::Apsp.dimension(InputScale::Medium), 8192);
        assert_eq!(AppKind::Apsp.dimension(InputScale::Large), 16384);
        assert_eq!(AppKind::Mst.dimension(InputScale::Large), 4096);
    }

    #[test]
    fn tolerances_follow_the_algebra() {
        for app in AppKind::all() {
            let spec = app.spec();
            let multiplicative =
                matches!(spec.op, OpKind::MaxMul | OpKind::MinMul | OpKind::PlusNorm);
            assert_eq!(spec.tolerance > 0.0, multiplicative, "{app:?}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            AppKind::all().iter().map(|a| a.spec().label).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn streaming_workloads_extend_but_never_enter_table4() {
        for app in AppKind::streaming() {
            assert!(!AppKind::all().contains(&app), "{app:?}");
            let spec = app.spec();
            assert_eq!(spec.tolerance, 0.0, "streaming validation is exact");
            assert!(
                spec.op.no_edge_f32().is_some(),
                "streaming algebras must have a sparse-skippable no-edge"
            );
        }
        assert_eq!(AppKind::StreamingApsp.spec().op, OpKind::MinPlus);
        assert_eq!(AppKind::StreamingBfs.spec().op, OpKind::OrAnd);
    }
}
