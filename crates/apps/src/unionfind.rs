//! Disjoint-set forest (union-find) — the substrate of the Kruskal MST
//! baseline.

/// Union-find with path compression and union by rank.
///
/// # Example
///
/// ```
/// use simd2_apps::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0), "already connected");
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (compressing the path).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_chain() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.union(3, 4));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(2, 3));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 2));
        assert!(!uf.union(0, 2));
        assert!(!uf.union(2, 0));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = UnionFind::new(2);
        assert!(!uf.union(1, 1));
        assert_eq!(uf.component_count(), 2);
    }
}
