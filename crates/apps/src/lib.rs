//! The eight SIMD² benchmark applications (paper Table 4, §5.2).
//!
//! Every application ships in the paper's three configurations:
//!
//! 1. **state-of-the-art GPU baseline** — a from-scratch reimplementation
//!    of the algorithm class the paper's baseline uses (blocked
//!    Floyd–Warshall for ECL-APSP / CUDA-FW, Kruskal + union-find for
//!    cudaMST, per-vertex bitset BFS for cuBool, a brute-force scan for
//!    kNN-CUDA), serving as the correctness oracle and the baseline cost
//!    profile;
//! 2. **SIMD² on CUDA cores** — the matrix-based algorithm run through the
//!    full-precision reference backend (the cuASR/CUTLASS configuration);
//! 3. **SIMD² with SIMD² units** — the same algorithm through the tiled
//!    fp16 functional backend (and, in the timing model, the SIMD² pipe).
//!
//! | App | op | baseline |
//! |-----|----|----------|
//! | APSP  | min-plus | blocked Floyd–Warshall (ECL-APSP) |
//! | APLP  | max-plus | topological DP / FW on reversed-weight DAG (ECL-APSP) |
//! | MCP   | max-min  | FW transitive closure variant (CUDA-FW) |
//! | MAXRP | max-mul  | FW variant (CUDA-FW) |
//! | MINRP | min-mul  | FW variant on DAGs (CUDA-FW) |
//! | MST   | min-max  | Kruskal + union-find (cudaMST) |
//! | GTC   | or-and   | per-vertex bitset BFS (cuBool) |
//! | KNN   | plus-norm| brute-force distance scan (kNN-CUDA) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aplp;
pub mod apsp;
pub mod gtc;
pub mod harness;
pub mod knn;
pub mod mst;
pub mod paths;
pub mod registry;
pub mod streaming;
pub mod timing;
pub mod unionfind;

pub use harness::{run_app, AppRun};
pub use registry::{AppKind, AppSpec};
pub use timing::{AppTiming, Config};
pub use unionfind::UnionFind;
