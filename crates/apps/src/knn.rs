//! K-nearest neighbours (KNN) — plus-norm (pairwise squared L2).
//!
//! * Baseline: brute-force per-query distance scan with selection (the
//!   kNN-CUDA structure).
//! * SIMD²: the whole pairwise distance matrix via one `simd2.addnorm`
//!   matrix operation (`D[q][r] = Σ_d (Q[q,d] − R[d,r])²`), then top-k
//!   selection per row.

use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{gen, Matrix};
use simd2_semiring::OpKind;

/// Dimensionality of the KNN feature space used by the workloads
/// (kNN-CUDA-style high-dimensional descriptors).
pub const DIMS: usize = 128;

/// Neighbours per query.
pub const K: usize = 8;

/// Workload generator: `n` points in `[0, 1)^DIMS`, quantised to fp16 so
/// the reduced-precision path sees identical inputs.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut pc = gen::point_cloud(n, DIMS, seed);
    simd2_semiring::precision::quantize_f16_slice(pc.as_mut_slice());
    pc
}

/// A KNN answer: for each query, the `k` nearest reference indices
/// (ascending by distance) and their squared distances.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnResult {
    /// `indices[q]` = the k nearest reference indices for query `q`.
    pub indices: Vec<Vec<usize>>,
    /// `distances[q][i]` = squared distance of `indices[q][i]`.
    pub distances: Vec<Vec<f32>>,
}

fn top_k_of_row(row: &[f32], k: usize, skip: Option<usize>) -> (Vec<usize>, Vec<f32>) {
    let mut order: Vec<usize> = (0..row.len()).filter(|&i| Some(i) != skip).collect();
    order.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
    order.truncate(k);
    let dists = order.iter().map(|&i| row[i]).collect();
    (order, dists)
}

/// Baseline: brute-force scan — for each query point, compute the squared
/// distance to every reference point in fp32 and select the `k` smallest.
/// Self-matches are excluded (query set == reference set).
pub fn baseline(points: &Matrix, k: usize) -> KnnResult {
    let n = points.rows();
    let mut indices = Vec::with_capacity(n);
    let mut distances = Vec::with_capacity(n);
    let mut row = vec![0.0f32; n];
    for q in 0..n {
        let pq = points.row(q);
        for (r, slot) in row.iter_mut().enumerate() {
            let pr = points.row(r);
            let mut acc = 0.0f32;
            for d in 0..points.cols() {
                let diff = pq[d] - pr[d];
                acc += diff * diff;
            }
            *slot = acc;
        }
        let (idx, dst) = top_k_of_row(&row, k, Some(q));
        indices.push(idx);
        distances.push(dst);
    }
    KnnResult { indices, distances }
}

/// SIMD²-ized KNN: one `addnorm` matrix operation produces the full
/// pairwise distance matrix, followed by per-row top-k selection.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn simd2<B: Backend>(backend: &mut B, points: &Matrix, k: usize) -> KnnResult {
    let n = points.rows();
    // D[q][r] = Σ_d (A[q,d] − B[d,r])²  with  B = pointsᵀ.
    let bt = points.transposed();
    let c = Matrix::zeros(n, n);
    let dmat = backend
        .mmo(OpKind::PlusNorm, points, &bt, &c)
        .expect("shapes by construction");
    let mut indices = Vec::with_capacity(n);
    let mut distances = Vec::with_capacity(n);
    for q in 0..n {
        let (idx, dst) = top_k_of_row(dmat.row(q), k, Some(q));
        indices.push(idx);
        distances.push(dst);
    }
    KnnResult { indices, distances }
}

/// Like [`simd2`], but also records the single `addnorm` matrix
/// operation as a replayable [`Plan`] (the per-row top-k selection is
/// the host-side epilogue the timing model prices separately).
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(backend: &mut B, points: &Matrix, k: usize) -> (KnnResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let result = simd2(&mut rec, points, k);
    (result, rec.finish())
}

/// Recall of `candidate` against `truth`: the fraction of true k-nearest
/// neighbours the candidate also reports (order-insensitive) — the §5.1
/// quality-of-result metric for this app.
pub fn recall(truth: &KnnResult, candidate: &KnnResult) -> f64 {
    assert_eq!(truth.indices.len(), candidate.indices.len());
    let mut hit = 0usize;
    let mut total = 0usize;
    for (t, c) in truth.indices.iter().zip(&candidate.indices) {
        total += t.len();
        hit += t.iter().filter(|i| c.contains(i)).count();
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::ReferenceBackend;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn baseline_finds_planted_neighbours() {
        // Three tight clusters: nearest neighbours stay within a cluster.
        let mut pts = Matrix::zeros(9, DIMS);
        for i in 0..9 {
            let center = (i / 3) as f32 * 10.0;
            for d in 0..DIMS {
                pts[(i, d)] = center + ((i % 3) as f32 + d as f32 * 0.001) * 0.01;
            }
        }
        let r = baseline(&pts, 2);
        for i in 0..9 {
            let cluster = i / 3;
            for &n in &r.indices[i] {
                assert_eq!(n / 3, cluster, "query {i} matched {n}");
            }
        }
    }

    #[test]
    fn distances_are_sorted_and_self_excluded() {
        let pts = generate(20, 9);
        let r = baseline(&pts, 5);
        for q in 0..20 {
            assert!(!r.indices[q].contains(&q), "self excluded");
            assert!(r.distances[q].windows(2).all(|w| w[0] <= w[1]), "sorted");
            assert_eq!(r.indices[q].len(), 5);
        }
    }

    #[test]
    fn recall_metric_behaves() {
        let a = KnnResult {
            indices: vec![vec![1, 2], vec![0, 3]],
            distances: vec![vec![0.0; 2]; 2],
        };
        let b = KnnResult {
            indices: vec![vec![2, 9], vec![0, 3]],
            distances: vec![vec![0.0; 2]; 2],
        };
        assert_eq!(recall(&a, &a.clone()), 1.0);
        assert_eq!(recall(&a, &b), 0.75);
    }

    #[test]
    fn distance_matrix_is_symmetric_via_addnorm() {
        let pts = generate(24, 11);
        let bt = pts.transposed();
        let c = Matrix::zeros(24, 24);
        let d = ReferenceBackend::new()
            .mmo(OpKind::PlusNorm, &pts, &bt, &c)
            .unwrap();
        for i in 0..24 {
            assert!(d[(i, i)].abs() < 1e-5);
            for j in 0..24 {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-4);
            }
        }
    }
}
