//! All-pairs shortest path (APSP) — the min-plus flagship application.
//!
//! * Baseline: blocked Floyd–Warshall, the algorithm class of ECL-APSP.
//! * SIMD²: min-plus closure (all-pairs Bellman-Ford or Leyzorek) per
//!   paper Figure 7.

use simd2::solve::{self, ClosureAlgorithm, ClosureResult};
use simd2::{Backend, Plan, PlanBuilder};
use simd2_matrix::{gen, Graph, Matrix};
use simd2_semiring::OpKind;

/// Workload generator: strongly connected digraph with fp16-exact integer
/// weights and average out-degree ≈ 8.
pub fn generate(n: usize, seed: u64) -> Graph {
    let p = (8.0 / n as f64).min(0.5);
    let mut g = gen::integer_weight_graph(n, p, 64, seed);
    // Hamiltonian backbone keeps every pair reachable.
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, 32.0);
    }
    g
}

/// Baseline: blocked Floyd–Warshall over the min-plus algebra.
///
/// The blocking mirrors the phase-based tiled structure of ECL-APSP
/// (diagonal block, then its row/column panels, then the remainder) —
/// same O(V³) work, cache-friendly order, bit-identical result to
/// textbook FW on this algebra.
pub fn baseline(g: &Graph) -> Matrix {
    blocked_floyd_warshall(OpKind::MinPlus, &g.adjacency(OpKind::MinPlus), 32)
}

/// Blocked Floyd–Warshall over any closure algebra, with block side `b`.
pub fn blocked_floyd_warshall(op: OpKind, adj: &Matrix, b: usize) -> Matrix {
    assert!(adj.is_square());
    let n = adj.rows();
    let mut d = adj.clone();
    let blocks = n.div_ceil(b);
    let range = |t: usize| (t * b)..(((t + 1) * b).min(n));
    for t in 0..blocks {
        // Phase 1: diagonal block.
        for k in range(t) {
            for i in range(t) {
                let dik = d[(i, k)];
                for j in range(t) {
                    d[(i, j)] = op.reduce_f32(d[(i, j)], op.combine_f32(dik, d[(k, j)]));
                }
            }
        }
        // Phase 2: row and column panels.
        for other in 0..blocks {
            if other == t {
                continue;
            }
            for k in range(t) {
                for i in range(t) {
                    let dik = d[(i, k)];
                    for j in range(other) {
                        d[(i, j)] = op.reduce_f32(d[(i, j)], op.combine_f32(dik, d[(k, j)]));
                    }
                }
                for i in range(other) {
                    let dik = d[(i, k)];
                    for j in range(t) {
                        d[(i, j)] = op.reduce_f32(d[(i, j)], op.combine_f32(dik, d[(k, j)]));
                    }
                }
            }
        }
        // Phase 3: remainder blocks.
        for bi in 0..blocks {
            if bi == t {
                continue;
            }
            for bj in 0..blocks {
                if bj == t {
                    continue;
                }
                for k in range(t) {
                    for i in range(bi) {
                        let dik = d[(i, k)];
                        for j in range(bj) {
                            d[(i, j)] = op.reduce_f32(d[(i, j)], op.combine_f32(dik, d[(k, j)]));
                        }
                    }
                }
            }
        }
    }
    d
}

/// SIMD²-ized APSP: min-plus closure through the given backend.
///
/// # Panics
///
/// Panics on internal shape errors (the adjacency matrix is square by
/// construction).
pub fn simd2<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> ClosureResult {
    let adj = g.adjacency(OpKind::MinPlus);
    solve::closure(backend, OpKind::MinPlus, &adj, algorithm, convergence)
        .expect("square adjacency")
}

/// Like [`simd2`], but also records the solve's MMO sequence as a
/// [`Plan`]: the algorithm runs eagerly through `backend` (same result,
/// counters and telemetry), and the returned plan replays, batches, or
/// prices that exact op sequence.
///
/// # Panics
///
/// Panics on internal shape errors.
pub fn record<B: Backend>(
    backend: &mut B,
    g: &Graph,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> (ClosureResult, Plan) {
    let mut rec = PlanBuilder::over(backend);
    let result = simd2(&mut rec, g, algorithm, convergence);
    (result, rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2::backend::ReferenceBackend;

    // Baseline-vs-SIMD² comparisons on both backends live in the
    // registry-driven sweep in `crate::harness`.

    #[test]
    fn blocked_fw_matches_plain_fw() {
        let g = generate(37, 3); // deliberately not a multiple of the block
        let adj = g.adjacency(OpKind::MinPlus);
        let plain = simd2::solve::floyd_warshall_closure(OpKind::MinPlus, &adj);
        let blocked = blocked_floyd_warshall(OpKind::MinPlus, &adj, 8);
        assert_eq!(plain, blocked);
    }

    #[test]
    fn all_pairs_are_reachable() {
        let g = generate(20, 5);
        let d = baseline(&g);
        assert!(d.as_slice().iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn leyzorek_converges_in_logarithmic_iterations() {
        let g = generate(64, 9);
        let mut be = ReferenceBackend::new();
        let r = simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        assert!(r.stats.converged_early);
        assert!(r.stats.iterations <= 7, "{}", r.stats.iterations);
    }

    #[test]
    fn generator_is_deterministic_and_connected() {
        assert_eq!(generate(16, 1), generate(16, 1));
        let g = generate(16, 2);
        assert!(g.edge_count() >= 16, "backbone present");
    }
}
