//! Per-instruction cost model of the CUDA-core (vector) path.
//!
//! On the SIMD-core path, one inner-loop element step of
//! `D = C ⊕ (A ⊗ B)` issues the `⊗` instruction, the `⊕` instruction,
//! and the surrounding loop bookkeeping. Costs are expressed in *issue
//! slots*, where 1.0 slot = one full-rate (128-lane) instruction issue on
//! an Ampere-class SM. The model encodes the three effects §6.2 identifies:
//!
//! 1. **FMA fusion** — plus-mul (and the multiply-add inside plus-norm)
//!    fuses `⊗` and `⊕` into a single full-rate instruction, which is why
//!    those two ops gain the least from SIMD²;
//! 2. **the min/max and or/and structural hazard** — min and max share one
//!    ALU port (as do the boolean ops), so each issue occupies two
//!    full-rate slots, and a kernel whose combine *and* reduce both land on
//!    that port stalls hardest;
//! 3. **dependent-chain stalls** — the `⊕` reduction is a serial
//!    read-after-write chain on the accumulator; when it cannot fuse, the
//!    chain adds pipeline stall slots (worst when both operators contend
//!    for the same port).

use simd2_semiring::OpKind;

/// Issue slots of a single full-rate vector instruction.
pub const FULL_RATE_SLOT: f64 = 1.0;

/// Issue slots of an instruction on the shared min/max (or boolean) ALU
/// port — half throughput, hence two slots.
pub const SHARED_PORT_SLOT: f64 = 2.0;

/// Loop bookkeeping (address arithmetic, predicates, operand staging)
/// amortised per element step.
pub const LOOP_OVERHEAD_SLOTS: f64 = 0.55;

/// Slot breakdown of one CUDA-core element step for one operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CudaOpCost {
    /// Slots of the `⊗` instruction (0 when fused into the reduce).
    pub combine_slots: f64,
    /// Slots of the `⊕` instruction (0 when fused into the combine).
    pub reduce_slots: f64,
    /// Amortised loop bookkeeping.
    pub loop_overhead: f64,
    /// Dependent-chain stall penalty.
    pub hazard_stall: f64,
}

impl CudaOpCost {
    /// Total issue slots per element step.
    pub fn total_slots(&self) -> f64 {
        self.combine_slots + self.reduce_slots + self.loop_overhead + self.hazard_stall
    }
}

/// Slot cost of one element step of `op` on CUDA cores.
pub fn cuda_op_cost(op: OpKind) -> CudaOpCost {
    match op {
        // One fused multiply-add; no separate reduce instruction.
        OpKind::PlusMul => CudaOpCost {
            combine_slots: FULL_RATE_SLOT,
            reduce_slots: 0.0,
            loop_overhead: LOOP_OVERHEAD_SLOTS,
            hazard_stall: 0.0,
        },
        // Subtract, then fused multiply-add (square-and-accumulate).
        OpKind::PlusNorm => CudaOpCost {
            combine_slots: 2.0 * FULL_RATE_SLOT,
            reduce_slots: 0.0,
            loop_overhead: LOOP_OVERHEAD_SLOTS,
            hazard_stall: 0.0,
        },
        // Full-rate add, then min/max on the shared port; the unfused
        // reduce chain stalls on the accumulator.
        OpKind::MinPlus | OpKind::MaxPlus => CudaOpCost {
            combine_slots: FULL_RATE_SLOT,
            reduce_slots: SHARED_PORT_SLOT,
            loop_overhead: LOOP_OVERHEAD_SLOTS,
            hazard_stall: 2.95,
        },
        // Full-rate multiply, then min/max reduce.
        OpKind::MinMul | OpKind::MaxMul => CudaOpCost {
            combine_slots: FULL_RATE_SLOT,
            reduce_slots: SHARED_PORT_SLOT,
            loop_overhead: LOOP_OVERHEAD_SLOTS,
            hazard_stall: 1.95,
        },
        // Both operators land on the shared port — the structural hazard
        // the paper credits for the largest SIMD² wins (up to 15.8×).
        OpKind::MinMax | OpKind::MaxMin | OpKind::OrAnd => CudaOpCost {
            combine_slots: SHARED_PORT_SLOT,
            reduce_slots: SHARED_PORT_SLOT,
            loop_overhead: LOOP_OVERHEAD_SLOTS,
            hazard_stall: 3.35,
        },
    }
}

/// Slot cost of one element step under a *hypothetical fused-vector ISA*
/// (paper §6.2's future-work aside): every `⊕-⊗` pair gets a fused
/// two-input instruction the way multiply-add has FMA, eliminating the
/// second issue and the dependent-chain stall. Operations whose fused
/// form still lands on the shared min/max (or boolean) port remain
/// half-rate.
///
/// Under this ISA the SIMD² advantage shrinks to the raw throughput gap
/// — "up to 5.96× for larger matrix operations" — which is the paper's
/// argument that SIMD² has more headroom than further vector fusion.
pub fn cuda_op_cost_fused(op: OpKind) -> CudaOpCost {
    let combine_slots = match op {
        // Already fused today.
        OpKind::PlusMul => FULL_RATE_SLOT,
        OpKind::PlusNorm => 2.0 * FULL_RATE_SLOT, // sub + fused square-acc
        // One fused instruction on the shared min/max (boolean) port.
        _ => SHARED_PORT_SLOT,
    };
    CudaOpCost {
        combine_slots,
        reduce_slots: 0.0,
        loop_overhead: LOOP_OVERHEAD_SLOTS,
        hazard_stall: 0.0,
    }
}

/// Utilisation of a pipe as a function of the effective problem dimension
/// `n` (wave quantisation, pipeline fill, launch-grid granularity):
/// `n / (n + half_sat)`.
pub fn utilisation(n: f64, half_sat: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    n / (n + half_sat)
}

/// Effective (cube-root) dimension of an `m×n×k` operation, used as the
/// utilisation argument for rectangular shapes.
pub fn effective_dim(m: usize, n: usize, k: usize) -> f64 {
    ((m as f64) * (n as f64) * (k as f64)).cbrt()
}

/// Predicted relative cost of one whole `m×n×k` MMO step: the analytic
/// per-element issue-slot price of `op` ([`cuda_op_cost`]) times the
/// `m·n·k` multiply-reduce volume. A *relative* price signal for
/// schedulers ordering independent steps (e.g. the plan optimizer's
/// longest-processing-time-first wave scheduler), not a wall-clock
/// estimate — it deliberately ignores utilisation and launch overheads,
/// which are schedule-invariant within a wave.
pub fn predicted_mmo_cost(op: OpKind, m: usize, n: usize, k: usize) -> f64 {
    cuda_op_cost(op).total_slots() * (m as f64) * (n as f64) * (k as f64)
}

/// Per-element traversal overhead of a compressed (CSR / Gustavson)
/// kernel relative to a dense sweep: index decode, gather addressing,
/// and the irregular-access penalty a sparse datapath pays on every
/// *stored* term. Calibrated against the Fig 14 observation that sparse
/// only overtakes dense in the ≳90% sparsity regime.
pub const SPARSE_TRAVERSAL_SLOTS: f64 = 2.4;

/// Fixed per-row slot cost of a Gustavson pass (row-pointer walk,
/// accumulator reset) charged once per `m·n` output element pair.
pub const SPARSE_ROW_OVERHEAD_SLOTS: f64 = 0.35;

/// Predicted relative cost of one whole `m×n×k` MMO step executed by a
/// compressed Gustavson kernel when the `A`/`B` operands carry stored
/// densities `density_a` / `density_b` (fractions in `[0, 1]` of
/// entries that differ from the algebra's no-edge value).
///
/// The multiply-reduce volume shrinks to the *surviving* term count —
/// `m·n·k · dₐ·d_b` in expectation, each term paying the dense slot
/// price plus [`SPARSE_TRAVERSAL_SLOTS`] — while every output element
/// still pays [`SPARSE_ROW_OVERHEAD_SLOTS`]. Same relative-price units
/// as [`predicted_mmo_cost`], so schedulers can mix dense and sparse
/// steps in one wave.
pub fn predicted_sparse_mmo_cost(
    op: OpKind,
    m: usize,
    n: usize,
    k: usize,
    density_a: f64,
    density_b: f64,
) -> f64 {
    let volume = (m as f64) * (n as f64) * (k as f64);
    let surviving = volume * density_a.clamp(0.0, 1.0) * density_b.clamp(0.0, 1.0);
    let per_term = cuda_op_cost(op).total_slots() + SPARSE_TRAVERSAL_SLOTS;
    surviving * per_term + (m as f64) * (n as f64) * SPARSE_ROW_OVERHEAD_SLOTS
}

/// The operand density below which the compressed Gustavson kernel is
/// predicted cheaper than the dense datapath for a square `n³` step of
/// `op` (both operands at the returned density). Found by bisection on
/// the monotone cost gap; returns a density in `[0, 1]`.
pub fn sparse_crossover_density(op: OpKind, n: usize) -> f64 {
    let dense = predicted_mmo_cost(op, n, n, n);
    let cheaper = |d: f64| predicted_sparse_mmo_cost(op, n, n, n, d, d) < dense;
    if !cheaper(0.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    if cheaper(hi) {
        return 1.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if cheaper(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn fused_ops_are_cheapest() {
        let pm = cuda_op_cost(OpKind::PlusMul).total_slots();
        for op in ALL_OPS {
            assert!(cuda_op_cost(op).total_slots() >= pm, "{op}");
        }
        assert_eq!(pm, 1.55);
    }

    #[test]
    fn shared_port_ops_are_most_expensive() {
        let hazard = cuda_op_cost(OpKind::MinMax).total_slots();
        assert_eq!(cuda_op_cost(OpKind::MaxMin).total_slots(), hazard);
        assert_eq!(cuda_op_cost(OpKind::OrAnd).total_slots(), hazard);
        for op in ALL_OPS {
            assert!(cuda_op_cost(op).total_slots() <= hazard, "{op}");
        }
    }

    #[test]
    fn mirror_pairs_cost_the_same() {
        for (a, b) in [
            (OpKind::MinPlus, OpKind::MaxPlus),
            (OpKind::MinMul, OpKind::MaxMul),
            (OpKind::MinMax, OpKind::MaxMin),
        ] {
            assert_eq!(cuda_op_cost(a), cuda_op_cost(b));
        }
    }

    #[test]
    fn ordering_matches_paper_fig9() {
        // hazard pair > min/max-plus > min/max-mul > plus-norm > plus-mul
        let s = |op| cuda_op_cost(op).total_slots();
        assert!(s(OpKind::MinMax) > s(OpKind::MinPlus));
        assert!(s(OpKind::MinPlus) > s(OpKind::MinMul));
        assert!(s(OpKind::MinMul) > s(OpKind::PlusNorm));
        assert!(s(OpKind::PlusNorm) > s(OpKind::PlusMul));
    }

    #[test]
    fn fused_isa_shrinks_every_gap() {
        for op in ALL_OPS {
            let today = cuda_op_cost(op).total_slots();
            let fused = cuda_op_cost_fused(op).total_slots();
            assert!(fused <= today, "{op}");
            assert!(fused >= cuda_op_cost(OpKind::PlusMul).total_slots(), "{op}");
        }
        // §6.2: with fused vector ops the best case drops to ~5–6×
        // (2× lane ratio × 2.55 slots ≈ 5.1).
        let best = cuda_op_cost_fused(OpKind::MinMax).total_slots() * 2.0;
        assert!((4.5..=6.0).contains(&best), "{best}");
    }

    #[test]
    fn sparse_cost_scales_with_density() {
        let dense = predicted_mmo_cost(OpKind::MinPlus, 64, 64, 64);
        let d10 = predicted_sparse_mmo_cost(OpKind::MinPlus, 64, 64, 64, 0.1, 0.1);
        let d50 = predicted_sparse_mmo_cost(OpKind::MinPlus, 64, 64, 64, 0.5, 0.5);
        assert!(d10 < d50, "{d10} vs {d50}");
        assert!(d10 < dense, "very sparse beats dense: {d10} vs {dense}");
        // Fully dense operands through the compressed kernel pay the
        // traversal tax: strictly worse than the dense datapath.
        let d100 = predicted_sparse_mmo_cost(OpKind::MinPlus, 64, 64, 64, 1.0, 1.0);
        assert!(d100 > dense, "{d100} vs {dense}");
    }

    #[test]
    fn crossover_density_separates_the_regimes() {
        for op in ALL_OPS {
            let x = sparse_crossover_density(op, 256);
            assert!((0.0..=1.0).contains(&x), "{op}: {x}");
            if x > 0.0 && x < 1.0 {
                let below = predicted_sparse_mmo_cost(op, 256, 256, 256, x * 0.9, x * 0.9);
                let above = predicted_sparse_mmo_cost(
                    op,
                    256,
                    256,
                    256,
                    (x * 1.1).min(1.0),
                    (x * 1.1).min(1.0),
                );
                let dense = predicted_mmo_cost(op, 256, 256, 256);
                assert!(below < dense, "{op}");
                assert!(above > dense, "{op}");
            }
        }
        // The hazard-pair ops tolerate denser operands before sparse
        // loses (their dense slot price is higher), mirroring how the
        // Fig 14 crossover shifts with the algebra.
        assert!(
            sparse_crossover_density(OpKind::MinMax, 256)
                > sparse_crossover_density(OpKind::PlusMul, 256)
        );
    }

    #[test]
    fn utilisation_ramps_and_saturates() {
        assert_eq!(utilisation(0.0, 100.0), 0.0);
        assert!(utilisation(100.0, 100.0) == 0.5);
        assert!(utilisation(4096.0, 200.0) > 0.95);
        assert!(utilisation(1024.0, 200.0) < utilisation(2048.0, 200.0));
    }

    #[test]
    fn effective_dim_is_cube_root() {
        assert_eq!(effective_dim(8, 8, 8), 8.0);
        let d = effective_dim(1024, 16, 16);
        assert!((d - 64.0).abs() < 1e-9);
    }
}
