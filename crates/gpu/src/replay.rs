//! Plan-replay adapter: drive the [`SmPipeline`](crate::SmPipeline)
//! cost model from a recorded sequence of matrix operations.
//!
//! The plan layer in `simd2` records every application's op sequence as
//! shape-level [`MmoTrace`] steps. This module lowers each step to the
//! same per-warp instruction streams the functional kernels execute
//! (load-C / stream-k / store-D over round-robin-partitioned output
//! tiles) and runs them through the cycle-level pipeline model — so the
//! timing layer prices the *recorded* algorithm instead of maintaining a
//! hand-written shadow of each app's iteration structure.
//!
//! `simd2-gpu` sits below `simd2` in the crate graph, so the adapter
//! consumes plain shape records rather than the plan type itself; the
//! plan layer produces them via its `traces()` accessor.

use serde::{Deserialize, Serialize};
use simd2_isa::{Dtype, Instruction, MatrixReg};
use simd2_semiring::OpKind;

use crate::sim::{PipelineStats, SmPipeline};

/// Hardware tile granularity of one ISA-level `simd2.mmo` (matches
/// `simd2_matrix::ISA_TILE`, restated here because the matrix crate sits
/// above this one).
const ISA_TILE: usize = 16;

/// The shape-level record of one matrix `D = C ⊕ (A ⊗ B)` step, as
/// recorded by a plan: the operation and the `m×n×k` geometry. This is
/// all the pipeline model needs — element *values* never affect issue
/// timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmoTrace {
    /// Semiring operation of the step.
    pub op: OpKind,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
}

impl MmoTrace {
    /// A trace record for one `m×n×k` operation.
    pub fn new(op: OpKind, m: usize, n: usize, k: usize) -> Self {
        Self { op, m, n, k }
    }

    /// Output tile count (`⌈m/16⌉ × ⌈n/16⌉`).
    pub fn output_tiles(&self) -> usize {
        self.m.div_ceil(ISA_TILE) * self.n.div_ceil(ISA_TILE)
    }

    /// Tile-level `mmo` count (`output_tiles × ⌈k/16⌉`).
    pub fn tile_mmos(&self) -> usize {
        self.output_tiles() * self.k.div_ceil(ISA_TILE)
    }

    /// Lowers the step to `warps` per-warp instruction streams: output
    /// tiles are dealt round-robin, each running the canonical load-C /
    /// stream-k / store-D loop over the padded `A | B | C/D` layout —
    /// the same streams the functional ISA backend executes, so the
    /// timing model prices exactly the instruction mix that ran.
    ///
    /// # Panics
    ///
    /// Panics if `warps == 0`.
    pub fn warp_programs(&self, warps: usize) -> Vec<Vec<Instruction>> {
        assert!(warps > 0, "a replay needs at least one warp");
        let pad = |x: usize| x.div_ceil(ISA_TILE) * ISA_TILE;
        let (mp, np, kp) = (pad(self.m), pad(self.n), pad(self.k));
        let (m_tiles, n_tiles, k_tiles) = (mp / ISA_TILE, np / ISA_TILE, kp / ISA_TILE);
        let (a_base, b_base) = (0usize, mp * kp);
        let c_base = b_base + kp * np;
        let (ra, rb, rc) = (MatrixReg::new(0), MatrixReg::new(1), MatrixReg::new(2));
        let mut programs = vec![Vec::new(); warps];
        for (idx, (ti, tj)) in (0..m_tiles)
            .flat_map(|ti| (0..n_tiles).map(move |tj| (ti, tj)))
            .enumerate()
        {
            let prog = &mut programs[idx % warps];
            let c_addr = (c_base + ti * ISA_TILE * np + tj * ISA_TILE) as u32;
            prog.push(Instruction::Load {
                dst: rc,
                dtype: Dtype::Fp32,
                addr: c_addr,
                ld: np as u32,
            });
            for tk in 0..k_tiles {
                let a_addr = (a_base + ti * ISA_TILE * kp + tk * ISA_TILE) as u32;
                let b_addr = (b_base + tk * ISA_TILE * np + tj * ISA_TILE) as u32;
                prog.push(Instruction::Load {
                    dst: ra,
                    dtype: Dtype::Fp16,
                    addr: a_addr,
                    ld: kp as u32,
                });
                prog.push(Instruction::Load {
                    dst: rb,
                    dtype: Dtype::Fp16,
                    addr: b_addr,
                    ld: np as u32,
                });
                prog.push(Instruction::Mmo {
                    op: self.op,
                    d: rc,
                    a: ra,
                    b: rb,
                    c: rc,
                });
            }
            prog.push(Instruction::Store {
                src: rc,
                addr: c_addr,
                ld: np as u32,
            });
        }
        programs
    }
}

/// Replays a recorded step sequence through the pipeline model: each
/// step is lowered to `warps` streams and drained in order (steps of a
/// replay are sequential — each reads its predecessors' outputs), and
/// the per-step statistics are summed into one [`PipelineStats`] whose
/// `cycles` is the end-to-end replay time.
///
/// # Panics
///
/// Panics if `warps == 0`.
pub fn simulate_trace(pipeline: &SmPipeline, traces: &[MmoTrace], warps: usize) -> PipelineStats {
    let mut total = PipelineStats::default();
    for trace in traces {
        let stats = pipeline.simulate(&trace.warp_programs(warps));
        total.cycles += stats.cycles;
        total.instructions += stats.instructions;
        total.mmos += stats.mmos;
        total.simd2_busy += stats.simd2_busy;
        total.lsu_busy += stats.lsu_busy;
        total.dependency_stalls += stats.dependency_stalls;
        total.structural_stalls += stats.structural_stalls;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_tile_arithmetic_matches_padding() {
        let t = MmoTrace::new(OpKind::MinPlus, 40, 40, 40);
        assert_eq!(t.output_tiles(), 9);
        assert_eq!(t.tile_mmos(), 27);
        let exact = MmoTrace::new(OpKind::PlusMul, 32, 16, 48);
        assert_eq!(exact.output_tiles(), 2);
        assert_eq!(exact.tile_mmos(), 6);
    }

    #[test]
    fn warp_programs_carry_the_full_instruction_mix() {
        let t = MmoTrace::new(OpKind::MaxPlus, 64, 64, 64);
        for warps in [1usize, 4, 8] {
            let programs = t.warp_programs(warps);
            assert_eq!(programs.len(), warps);
            let mmos: usize = programs
                .iter()
                .flatten()
                .filter(|i| matches!(i, Instruction::Mmo { .. }))
                .count();
            let stores: usize = programs
                .iter()
                .flatten()
                .filter(|i| matches!(i, Instruction::Store { .. }))
                .count();
            assert_eq!(mmos, t.tile_mmos(), "{warps} warps");
            assert_eq!(stores, t.output_tiles(), "{warps} warps");
        }
    }

    #[test]
    fn more_warps_drain_a_step_faster() {
        let t = MmoTrace::new(OpKind::MinPlus, 64, 64, 64);
        let p = SmPipeline::new();
        let one = p.simulate(&t.warp_programs(1));
        let eight = p.simulate(&t.warp_programs(8));
        assert_eq!(one.mmos, eight.mmos);
        assert!(
            eight.cycles < one.cycles,
            "{} vs {}",
            eight.cycles,
            one.cycles
        );
    }

    #[test]
    fn replay_sums_sequential_steps() {
        let p = SmPipeline::new();
        let steps = [
            MmoTrace::new(OpKind::MinPlus, 48, 48, 48),
            MmoTrace::new(OpKind::MinPlus, 48, 48, 48),
        ];
        let one = simulate_trace(&p, &steps[..1], 4);
        let two = simulate_trace(&p, &steps, 4);
        assert_eq!(two.mmos, 2 * one.mmos);
        assert_eq!(two.cycles, 2 * one.cycles);
        assert_eq!(two.instructions, 2 * one.instructions);
    }

    #[test]
    fn empty_replay_is_zero() {
        let stats = simulate_trace(&SmPipeline::new(), &[], 4);
        assert_eq!(stats, PipelineStats::default());
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_rejected() {
        let _ = MmoTrace::new(OpKind::MinPlus, 16, 16, 16).warp_programs(0);
    }
}
