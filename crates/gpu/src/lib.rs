//! GPU substrate: the performance model behind every timing figure.
//!
//! The paper evaluates SIMD² by *emulation* on an RTX 3080: SIMD²-ized
//! kernels run their matrix operations through Tensor-Core `wmma::mma`
//! calls of identical shape (§5.1), so reported numbers are the timing of
//! real tile-granular instruction streams. This crate replaces the physical
//! GPU with an analytical machine model that reproduces the same
//! first-order effects:
//!
//! * the CUDA-core issue model with per-class ALU-port throughput —
//!   including the structural hazard the paper identifies (min and max
//!   share an ALU port, as do or/and), which is why fused SIMD²
//!   instructions win by *more* than the raw throughput ratio (§6.2),
//! * the SIMD²/Tensor tile pipes with their lane throughput,
//! * fused multiply-add on CUDA cores, which is why plus-mul and plus-norm
//!   gain the least (§6.2),
//! * kernel-launch overhead and size-dependent utilisation, which produce
//!   the speedup ramp that saturates beyond 4096² inputs (Fig 9),
//! * memory bandwidth and device-memory capacity (the Fig 14 OOM wall).
//!
//! [`config::GpuConfig`] describes the machine (RTX 3080-class by default,
//! plus the previous-generation part used in the §6.3 discussion);
//! [`kernel`] prices whole kernels from instruction-mix profiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod kernel;
pub mod replay;
pub mod sim;

pub use config::GpuConfig;
pub use cost::predicted_mmo_cost;
pub use kernel::{geomean, Gpu, KernelProfile, Seconds};
pub use replay::{simulate_trace, MmoTrace};
pub use sim::{GridSim, PipelineStats, SmPipeline};
