//! Cycle-level SM pipeline simulator for SIMD² instruction streams.
//!
//! The analytical roofline in [`crate::kernel`] prices kernels from
//! aggregate instruction mixes. This module complements it with a
//! *microarchitectural* model in the spirit of Accel-Sim's Tensor-Core
//! modelling (the paper cites Accel-Sim as the source of its 4×4 unit
//! configuration): an in-order, scoreboarded SM sub-core front-end
//! issuing a warp-level SIMD² instruction stream to two back-end units —
//!
//! * the **LSU** handles `simd2.load` / `simd2.store` (a 16×16 tile is
//!   256 elements, moved 128 lanes per cycle ⇒ 2 cycles of port
//!   occupancy, plus shared-memory latency before the destination
//!   register is ready),
//! * the **SIMD² unit** handles `simd2.mmo` (a 16×16×16 ISA operation is
//!   64 pipelined 4×4 tile steps ⇒ 64 cycles of unit occupancy, cf.
//!   [`simd2_mxu::timing::UnitTiming`]).
//!
//! Multiple warps are interleaved by a greedy-oldest scheduler, which is
//! what hides the tile-pipe latency exactly as on real hardware; the
//! tests check that simulated steady-state throughput converges to the
//! analytic model's 64-cycles-per-mmo bound once enough warps are
//! resident.

use simd2_isa::Instruction;
use simd2_mxu::timing::UnitTiming;
use simd2_trace::{field, span, Counter, Tracer};

/// Process-global instructions issued by traced pipelines.
static GPU_INSTRUCTIONS: Counter = Counter::new("gpu.instructions");
/// Process-global `simd2.mmo` instructions issued by traced pipelines.
static GPU_MMOS: Counter = Counter::new("gpu.mmos");
/// Process-global dependency-stall slots in traced pipelines.
static GPU_DEPENDENCY_STALLS: Counter = Counter::new("gpu.dependency_stalls");
/// Process-global structural-stall slots in traced pipelines.
static GPU_STRUCTURAL_STALLS: Counter = Counter::new("gpu.structural_stalls");
/// Process-global simulated cycles in traced pipelines.
static GPU_CYCLES: Counter = Counter::new("gpu.cycles");

/// Latency (cycles) from LSU issue until a loaded tile register is ready.
pub const SHARED_MEM_LATENCY: u32 = 24;

/// Cycles a tile load/store occupies the LSU port (256 elements / 128
/// lanes).
pub const LSU_OCCUPANCY: u32 = 2;

/// Outcome of simulating an instruction stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total cycles until the last instruction retires.
    pub cycles: u64,
    /// Instructions issued (across all warps).
    pub instructions: u64,
    /// `simd2.mmo` instructions issued.
    pub mmos: u64,
    /// Cycles the SIMD² unit was busy.
    pub simd2_busy: u64,
    /// Cycles the LSU was busy.
    pub lsu_busy: u64,
    /// Issue slots lost to scoreboard (data-dependency) stalls.
    pub dependency_stalls: u64,
    /// Issue slots lost to structural (unit-busy) stalls.
    pub structural_stalls: u64,
}

impl PipelineStats {
    /// Fraction of cycles the SIMD² unit was busy — the utilisation the
    /// analytic model approximates with its saturation curve.
    pub fn simd2_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.simd2_busy as f64 / self.cycles as f64
        }
    }

    /// Average cycles per `mmo` (∞ if none ran).
    pub fn cycles_per_mmo(&self) -> f64 {
        if self.mmos == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.mmos as f64
        }
    }
}

/// Per-warp architectural state inside the pipeline model.
#[derive(Clone, Debug)]
struct WarpState {
    program: Vec<Instruction>,
    pc: usize,
    /// Cycle at which each matrix register becomes readable/writable.
    reg_ready: [u64; simd2_isa::MATRIX_REG_COUNT],
}

impl WarpState {
    fn done(&self) -> bool {
        self.pc >= self.program.len()
    }
}

/// Operands an instruction reads / the register it writes.
fn deps(instr: &Instruction) -> (Vec<usize>, Option<usize>) {
    match *instr {
        Instruction::Fill { dst, .. } => (vec![], Some(dst.index())),
        Instruction::Load { dst, .. } => (vec![], Some(dst.index())),
        Instruction::Store { src, .. } => (vec![src.index()], None),
        Instruction::Mmo { d, a, b, c, .. } => {
            (vec![a.index(), b.index(), c.index()], Some(d.index()))
        }
    }
}

/// An in-order, scoreboarded SM sub-core executing SIMD² warps.
///
/// # Example
///
/// ```
/// use simd2_gpu::SmPipeline;
/// use simd2_isa::asm;
///
/// let prog = asm::parse(
///     "simd2.load.f16 %m0, [0], 16
///      simd2.load.f16 %m1, [256], 16
///      simd2.fill %m2, 0.0
///      simd2.mma %m2, %m0, %m1, %m2
///      simd2.store.f32 [512], %m2, 16",
/// )?;
/// let stats = SmPipeline::new().simulate(&[prog]);
/// assert_eq!(stats.mmos, 1);
/// assert!(stats.cycles > 64, "one mmo occupies the unit for 64 cycles");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SmPipeline {
    unit: UnitTiming,
    tracer: Tracer,
}

impl Default for SmPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl SmPipeline {
    /// A pipeline around the synthesised 4×4 SIMD² unit.
    pub fn new() -> Self {
        Self {
            unit: UnitTiming::simd2_4x4(),
            tracer: Tracer::off(),
        }
    }

    /// A pipeline around a custom unit timing (tile-shape ablations).
    pub fn with_unit(unit: UnitTiming) -> Self {
        Self {
            unit,
            tracer: Tracer::off(),
        }
    }

    /// Attaches a telemetry tracer: every [`simulate`](Self::simulate)
    /// drain emits one [`span::PIPELINE`] instant event carrying the
    /// issue/stall/cycle statistics and feeds the process-global `gpu.*`
    /// counters.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Cycles one ISA-level 16×16×16 `mmo` occupies the SIMD² unit.
    fn mmo_occupancy(&self) -> u64 {
        let steps = (16 / self.unit.tile_side).pow(3) as u64;
        steps * self.unit.initiation_interval as u64
    }

    /// Latency from `mmo` issue to destination-register availability.
    fn mmo_latency(&self) -> u64 {
        self.mmo_occupancy() + self.unit.latency_cycles as u64
    }

    /// Simulates one instruction stream per warp, all resident on one
    /// sub-core, greedy-oldest-first issue, one instruction per cycle.
    pub fn simulate(&self, warp_programs: &[Vec<Instruction>]) -> PipelineStats {
        let mut warps: Vec<WarpState> = warp_programs
            .iter()
            .map(|p| WarpState {
                program: p.clone(),
                pc: 0,
                reg_ready: [0; simd2_isa::MATRIX_REG_COUNT],
            })
            .collect();
        let mut stats = PipelineStats::default();
        let mut cycle: u64 = 0;
        // Cycle at which each back-end unit frees up.
        let mut simd2_free: u64 = 0;
        let mut lsu_free: u64 = 0;
        let mut last_retire: u64 = 0;

        while warps.iter().any(|w| !w.done()) {
            // Pick the oldest ready warp (lowest index with issuable head).
            let mut issued = false;
            let mut saw_dependency_stall = false;
            let mut saw_structural_stall = false;
            for w in warps.iter_mut() {
                if w.done() {
                    continue;
                }
                let instr = w.program[w.pc];
                let (reads, write) = deps(&instr);
                // Scoreboard: all sources ready, destination not in flight.
                let ready = reads.iter().all(|&r| w.reg_ready[r] <= cycle)
                    && write.is_none_or(|d| w.reg_ready[d] <= cycle);
                if !ready {
                    saw_dependency_stall = true;
                    continue;
                }
                // Structural: the target unit must be free this cycle.
                let (unit_free, occupancy, latency) = match instr {
                    Instruction::Mmo { .. } => {
                        (&mut simd2_free, self.mmo_occupancy(), self.mmo_latency())
                    }
                    Instruction::Load { .. } | Instruction::Store { .. } => (
                        &mut lsu_free,
                        u64::from(LSU_OCCUPANCY),
                        u64::from(LSU_OCCUPANCY + SHARED_MEM_LATENCY),
                    ),
                    Instruction::Fill { .. } => (&mut lsu_free, 0, 1),
                };
                if *unit_free > cycle {
                    saw_structural_stall = true;
                    continue;
                }
                // Issue.
                *unit_free = cycle + occupancy;
                match instr {
                    Instruction::Mmo { .. } => {
                        stats.mmos += 1;
                        stats.simd2_busy += occupancy;
                    }
                    Instruction::Load { .. } | Instruction::Store { .. } => {
                        stats.lsu_busy += occupancy;
                    }
                    Instruction::Fill { .. } => {}
                }
                if let Some(d) = write {
                    w.reg_ready[d] = cycle + latency;
                }
                last_retire = last_retire.max(cycle + latency);
                w.pc += 1;
                stats.instructions += 1;
                issued = true;
                break; // one issue slot per cycle
            }
            if !issued {
                if saw_dependency_stall {
                    stats.dependency_stalls += 1;
                }
                if saw_structural_stall && !saw_dependency_stall {
                    stats.structural_stalls += 1;
                }
                // Jump to the next interesting cycle to keep the loop
                // linear in events rather than cycles.
                let mut next = u64::MAX;
                for w in &warps {
                    if w.done() {
                        continue;
                    }
                    let (reads, write) = deps(&w.program[w.pc]);
                    for &r in &reads {
                        if w.reg_ready[r] > cycle {
                            next = next.min(w.reg_ready[r]);
                        }
                    }
                    if let Some(d) = write {
                        if w.reg_ready[d] > cycle {
                            next = next.min(w.reg_ready[d]);
                        }
                    }
                }
                for free in [simd2_free, lsu_free] {
                    if free > cycle {
                        next = next.min(free);
                    }
                }
                cycle = if next == u64::MAX { cycle + 1 } else { next };
                continue;
            }
            cycle += 1;
        }
        stats.cycles = last_retire.max(cycle);
        if self.tracer.enabled() {
            GPU_INSTRUCTIONS.add(stats.instructions);
            GPU_MMOS.add(stats.mmos);
            GPU_DEPENDENCY_STALLS.add(stats.dependency_stalls);
            GPU_STRUCTURAL_STALLS.add(stats.structural_stalls);
            GPU_CYCLES.add(stats.cycles);
            self.tracer.instant(
                span::PIPELINE,
                &[
                    field("warps", warp_programs.len()),
                    field("cycles", stats.cycles),
                    field("instructions", stats.instructions),
                    field("mmos", stats.mmos),
                    field("simd2_busy", stats.simd2_busy),
                    field("lsu_busy", stats.lsu_busy),
                    field("dependency_stalls", stats.dependency_stalls),
                    field("structural_stalls", stats.structural_stalls),
                ],
            );
        }
        stats
    }
}

/// Grid-level simulation: distributes warp programs across every SIMD²
/// unit of a whole GPU (each unit fronted by its own [`SmPipeline`]) and
/// reports the slowest unit — the kernel's wall-clock in cycles.
///
/// This is the bridge from the single-unit microarchitecture model to the
/// chip-level analytic model: with enough warps per unit, grid cycles
/// approach `total_mmos × 64 / total_units`.
#[derive(Clone, Debug)]
pub struct GridSim {
    pipeline: SmPipeline,
    total_units: usize,
    warps_per_unit: usize,
}

impl GridSim {
    /// A grid of `total_units` SIMD² units, each fed by up to
    /// `warps_per_unit` resident warps.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(pipeline: SmPipeline, total_units: usize, warps_per_unit: usize) -> Self {
        assert!(total_units > 0 && warps_per_unit > 0);
        Self {
            pipeline,
            total_units,
            warps_per_unit,
        }
    }

    /// Simulates the kernel: warp programs are dealt round-robin to
    /// units; within a unit, programs beyond the resident-warp budget are
    /// concatenated onto the resident slots (tail effects included).
    pub fn simulate(&self, warp_programs: &[Vec<Instruction>]) -> PipelineStats {
        let mut worst = PipelineStats::default();
        let mut aggregate = PipelineStats::default();
        for unit in 0..self.total_units {
            // Programs assigned to this unit.
            let mine: Vec<&Vec<Instruction>> = warp_programs
                .iter()
                .skip(unit)
                .step_by(self.total_units)
                .collect();
            if mine.is_empty() {
                continue;
            }
            // Fold into at most `warps_per_unit` resident streams.
            let mut slots: Vec<Vec<Instruction>> = vec![Vec::new(); self.warps_per_unit];
            for (i, prog) in mine.iter().enumerate() {
                slots[i % self.warps_per_unit].extend_from_slice(prog);
            }
            let stats = self.pipeline.simulate(&slots);
            aggregate.instructions += stats.instructions;
            aggregate.mmos += stats.mmos;
            aggregate.simd2_busy += stats.simd2_busy;
            aggregate.lsu_busy += stats.lsu_busy;
            aggregate.dependency_stalls += stats.dependency_stalls;
            aggregate.structural_stalls += stats.structural_stalls;
            if stats.cycles > worst.cycles {
                worst.cycles = stats.cycles;
            }
        }
        aggregate.cycles = worst.cycles;
        aggregate
    }
}

/// Builds the warp program for one output tile of an `mmo` with `k_tiles`
/// reduction tiles — the canonical load/load/mmo stream the backends
/// emit, reusable by the simulator's callers and tests.
pub fn tile_mmo_program(op: simd2_semiring::OpKind, k_tiles: usize) -> Vec<Instruction> {
    use simd2_isa::{Dtype, MatrixReg};
    let (ra, rb, rc) = (MatrixReg::new(0), MatrixReg::new(1), MatrixReg::new(2));
    let mut prog = vec![Instruction::Load {
        dst: rc,
        dtype: Dtype::Fp32,
        addr: 0,
        ld: 16,
    }];
    for t in 0..k_tiles {
        prog.push(Instruction::Load {
            dst: ra,
            dtype: Dtype::Fp16,
            addr: (256 + 512 * t) as u32,
            ld: 16,
        });
        prog.push(Instruction::Load {
            dst: rb,
            dtype: Dtype::Fp16,
            addr: (512 + 512 * t) as u32,
            ld: 16,
        });
        prog.push(Instruction::Mmo {
            op,
            d: rc,
            a: ra,
            b: rb,
            c: rc,
        });
    }
    prog.push(Instruction::Store {
        src: rc,
        addr: 0,
        ld: 16,
    });
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::OpKind;

    #[test]
    fn empty_and_trivial_programs() {
        let p = SmPipeline::new();
        let stats = p.simulate(&[]);
        assert_eq!(stats.cycles, 0);
        let stats = p.simulate(&[vec![]]);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn single_mmo_occupies_64_cycles() {
        let p = SmPipeline::new();
        assert_eq!(p.mmo_occupancy(), 64);
        let prog = tile_mmo_program(OpKind::MinPlus, 1);
        let stats = p.simulate(&[prog]);
        assert_eq!(stats.mmos, 1);
        assert_eq!(stats.simd2_busy, 64);
        // loads (latency) + mmo (latency) + store.
        assert!(stats.cycles > 64 + u64::from(SHARED_MEM_LATENCY));
    }

    #[test]
    fn traced_pipeline_emits_its_stats_as_an_event() {
        use simd2_trace::RingSink;
        let ring = RingSink::shared();
        let p = SmPipeline::new().with_tracer(Tracer::to(ring.clone()));
        let prog = tile_mmo_program(OpKind::MinPlus, 4);
        let stats = p.simulate(&[prog]);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.span, span::PIPELINE);
        assert_eq!(e.u64("cycles"), Some(stats.cycles));
        assert_eq!(e.u64("instructions"), Some(stats.instructions));
        assert_eq!(e.u64("mmos"), Some(stats.mmos));
        assert_eq!(e.u64("dependency_stalls"), Some(stats.dependency_stalls));
        assert_eq!(e.u64("structural_stalls"), Some(stats.structural_stalls));
        assert_eq!(e.u64("warps"), Some(1));
    }

    #[test]
    fn single_warp_is_dependency_limited() {
        // One warp's serial C-register chain cannot keep the unit full.
        let p = SmPipeline::new();
        let prog = tile_mmo_program(OpKind::MinPlus, 16);
        let stats = p.simulate(&[prog]);
        assert!(
            stats.simd2_utilization() < 0.95,
            "{}",
            stats.simd2_utilization()
        );
        assert!(stats.dependency_stalls > 0);
    }

    #[test]
    fn enough_warps_saturate_the_tile_pipe() {
        // With several independent warps, steady-state throughput reaches
        // the analytic bound of one mmo per 64 cycles.
        let p = SmPipeline::new();
        let programs: Vec<_> = (0..6)
            .map(|_| tile_mmo_program(OpKind::MinPlus, 16))
            .collect();
        let stats = p.simulate(&programs);
        assert_eq!(stats.mmos, 6 * 16);
        assert!(
            stats.simd2_utilization() > 0.9,
            "utilization {}",
            stats.simd2_utilization()
        );
        let cpm = stats.cycles_per_mmo();
        assert!((64.0..=75.0).contains(&cpm), "cycles/mmo {cpm}");
    }

    #[test]
    fn utilization_grows_monotonically_with_warps() {
        let p = SmPipeline::new();
        let mut prev = 0.0;
        for warps in [1usize, 2, 4, 8] {
            let programs: Vec<_> = (0..warps)
                .map(|_| tile_mmo_program(OpKind::MinPlus, 8))
                .collect();
            let u = p.simulate(&programs).simd2_utilization();
            assert!(u >= prev - 1e-9, "{warps} warps: {u} < {prev}");
            prev = u;
        }
        assert!(prev > 0.8);
    }

    #[test]
    fn all_ops_simulate_identically() {
        // Latency parity: the stream timing is op-independent.
        let p = SmPipeline::new();
        let base = p.simulate(&[tile_mmo_program(OpKind::PlusMul, 4)]);
        for op in simd2_semiring::EXTENDED_OPS {
            let s = p.simulate(&[tile_mmo_program(op, 4)]);
            assert_eq!(s.cycles, base.cycles, "{op}");
        }
    }

    #[test]
    fn store_waits_for_mmo_result() {
        use simd2_isa::{Dtype, MatrixReg};
        let p = SmPipeline::new();
        let (ra, rc) = (MatrixReg::new(0), MatrixReg::new(2));
        let prog = vec![
            Instruction::Load {
                dst: ra,
                dtype: Dtype::Fp16,
                addr: 0,
                ld: 16,
            },
            Instruction::Fill {
                dst: rc,
                value: 0.0,
            },
            Instruction::Mmo {
                op: OpKind::PlusMul,
                d: rc,
                a: ra,
                b: ra,
                c: rc,
            },
            Instruction::Store {
                src: rc,
                addr: 0,
                ld: 16,
            },
        ];
        let stats = p.simulate(&[prog]);
        // The store cannot issue before the mmo's full latency has passed.
        assert!(stats.cycles >= u64::from(SHARED_MEM_LATENCY) + 64 + 4);
        assert!(stats.dependency_stalls > 0);
    }

    #[test]
    fn eight_by_eight_unit_halves_occupancy() {
        let fat = UnitTiming {
            tile_side: 8,
            latency_cycles: 4,
            initiation_interval: 1,
        };
        let p = SmPipeline::with_unit(fat);
        assert_eq!(p.mmo_occupancy(), 8); // (16/8)^3
        let programs: Vec<_> = (0..6)
            .map(|_| tile_mmo_program(OpKind::MinPlus, 16))
            .collect();
        let fast = p.simulate(&programs);
        let slow = SmPipeline::new().simulate(&programs);
        assert!(
            fast.cycles < slow.cycles / 3,
            "{} vs {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn grid_sim_divides_work_across_units() {
        // 32 warps of 8 mmos each on 1 vs 8 units.
        let programs: Vec<_> = (0..32)
            .map(|_| tile_mmo_program(OpKind::MinPlus, 8))
            .collect();
        let one = GridSim::new(SmPipeline::new(), 1, 8).simulate(&programs);
        let eight = GridSim::new(SmPipeline::new(), 8, 8).simulate(&programs);
        assert_eq!(one.mmos, eight.mmos);
        let ratio = one.cycles as f64 / eight.cycles as f64;
        assert!((6.0..=8.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn saturated_grid_approaches_analytic_bound() {
        let programs: Vec<_> = (0..64)
            .map(|_| tile_mmo_program(OpKind::MinPlus, 16))
            .collect();
        let units = 4;
        let stats = GridSim::new(SmPipeline::new(), units, 8).simulate(&programs);
        let ideal = stats.mmos as f64 * 64.0 / units as f64;
        let ratio = stats.cycles as f64 / ideal;
        assert!(
            (1.0..=1.2).contains(&ratio),
            "grid cycles {} vs ideal {ideal}",
            stats.cycles
        );
    }

    #[test]
    fn empty_grid_units_are_skipped() {
        // 2 programs over 8 units: 6 units idle, no panic.
        let programs: Vec<_> = (0..2).map(|_| tile_mmo_program(OpKind::OrAnd, 2)).collect();
        let stats = GridSim::new(SmPipeline::new(), 8, 4).simulate(&programs);
        assert_eq!(stats.mmos, 4);
        assert!(stats.cycles > 0);
    }

    #[test]
    #[should_panic]
    fn grid_rejects_zero_units() {
        let _ = GridSim::new(SmPipeline::new(), 0, 1);
    }

    #[test]
    fn stats_accessors() {
        let s = PipelineStats::default();
        assert_eq!(s.simd2_utilization(), 0.0);
        assert_eq!(s.cycles_per_mmo(), f64::INFINITY);
    }
}
