//! Whole-kernel cost estimation.
//!
//! A kernel is priced as `launch_overhead + max(compute_time, memory_time)`
//! — the classic roofline. Compute time follows the issue-slot model in
//! [`crate::cost`] (CUDA path) or the lane throughput of the SIMD² pipe,
//! both derated by size-dependent utilisation.

use serde::{Deserialize, Serialize};
use simd2_semiring::OpKind;

use crate::config::GpuConfig;
use crate::cost::{cuda_op_cost, effective_dim, utilisation};

/// A wall-clock duration produced by the model, seconds.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(pub f64);

impl Seconds {
    /// The value in seconds.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1.0e3
    }

    /// `a / b` as a speedup factor.
    pub fn speedup_over(self, other: Seconds) -> f64 {
        other.0 / self.0
    }
}

impl std::ops::Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

/// Generic kernel description for custom (non-mmo) kernels — the shape the
/// application baselines are priced through.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelProfile {
    /// Inner-loop element steps the kernel performs.
    pub element_steps: f64,
    /// Issue slots per element step (see [`crate::cost`]).
    pub slots_per_step: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Kernel launches in this phase (serialised launches each pay the
    /// fixed overhead — this is what makes phase-per-vertex baselines like
    /// Floyd–Warshall launch-bound at small sizes).
    pub launches: u64,
    /// Fraction of peak issue rate the kernel sustains (algorithmic
    /// inefficiency: divergence, limited parallelism, sync barriers).
    pub efficiency: f64,
}

/// The machine model: prices kernels against a [`GpuConfig`].
///
/// # Example
///
/// ```
/// use simd2_gpu::{Gpu, GpuConfig};
/// use simd2_semiring::OpKind;
///
/// let gpu = Gpu::new(GpuConfig::rtx3080());
/// let n = 4096;
/// let cuda = gpu.cuda_mmo_time(OpKind::MinPlus, n, n, n);
/// let simd2 = gpu.simd2_mmo_time(OpKind::MinPlus, n, n, n);
/// assert!(simd2.get() < cuda.get()); // SIMD² wins at this size
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Gpu {
    config: GpuConfig,
}

impl Gpu {
    /// Creates a model over the given machine description.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// The underlying machine description.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Time for a custom kernel profile.
    pub fn kernel_time(&self, p: &KernelProfile) -> Seconds {
        let eff = p.efficiency.clamp(1.0e-6, 1.0);
        let compute =
            p.element_steps * p.slots_per_step / (self.config.cuda_ops_per_second() * eff);
        let memory = p.bytes / self.config.dram_bytes_per_second();
        Seconds(p.launches as f64 * self.config.kernel_launch_seconds + compute.max(memory))
    }

    /// Time of one `m×n×k` matrix-matrix operation implemented on CUDA
    /// cores (the "SIMD² on CUDA cores" configuration, and the per-op
    /// microbenchmark baseline).
    pub fn cuda_mmo_time(&self, op: OpKind, m: usize, n: usize, k: usize) -> Seconds {
        let steps = m as f64 * n as f64 * k as f64;
        let slots = cuda_op_cost(op).total_slots();
        let eff = utilisation(effective_dim(m, n, k), self.config.cuda_half_sat_dim);
        // Shared-memory-blocked kernel: operands are re-read once per
        // 64-wide output block; accumulators stream once.
        let block = 128.0;
        let bytes = 4.0
            * ((m * k) as f64 * (n as f64 / block).ceil()
                + (k * n) as f64 * (m as f64 / block).ceil())
            + 8.0 * (m * n) as f64;
        let compute = steps * slots / (self.config.cuda_ops_per_second() * eff);
        let memory = bytes / self.config.dram_bytes_per_second();
        Seconds(self.config.kernel_launch_seconds + compute.max(memory))
    }

    /// Time of one `m×n×k` matrix-matrix operation on the SIMD² units
    /// (dimensions are padded to the 16-element ISA tile).
    pub fn simd2_mmo_time(&self, op: OpKind, m: usize, n: usize, k: usize) -> Seconds {
        let _ = op; // identical latency for all nine ops by design (§3.2)
        let pad = |x: usize| x.div_ceil(16) * 16;
        let (mp, np, kp) = (pad(m), pad(n), pad(k));
        let lane_ops = mp as f64 * np as f64 * kp as f64;
        let eff = utilisation(effective_dim(mp, np, kp), self.config.simd2_half_sat_dim);
        // fp16 operands; same blocked reuse pattern with wider blocks
        // (tile-granular staging through shared memory).
        let block = 512.0;
        let bytes = 2.0
            * ((mp * kp) as f64 * (np as f64 / block).ceil()
                + (kp * np) as f64 * (mp as f64 / block).ceil())
            + 8.0 * (mp * np) as f64;
        let compute = lane_ops / (self.config.simd2_ops_per_second() * eff);
        let memory = bytes / self.config.dram_bytes_per_second();
        Seconds(self.config.kernel_launch_seconds + compute.max(memory))
    }

    /// Time of one `m×n×k` operation on *sparse* SIMD² units with 2:4
    /// structured-sparsity operands (Fig 13): the tile pipe runs at
    /// `sparse_tensor_speedup ×` throughput; data volume of the compressed
    /// operand halves.
    pub fn sparse_simd2_mmo_time(&self, op: OpKind, m: usize, n: usize, k: usize) -> Seconds {
        let dense = self.simd2_mmo_time(op, m, n, k);
        let launch = self.config.kernel_launch_seconds;
        Seconds(launch + (dense.get() - launch) / self.config.sparse_tensor_speedup)
    }

    /// Time of an element-wise kernel over `elements` values performing
    /// `slots` issue slots each (convergence checks, epilogues).
    pub fn elementwise_time(&self, elements: usize, slots: f64) -> Seconds {
        let bytes = elements as f64 * 8.0; // read old + new value
        let compute = elements as f64 * slots / self.config.cuda_ops_per_second();
        let memory = bytes / self.config.dram_bytes_per_second();
        Seconds(self.config.kernel_launch_seconds + compute.max(memory))
    }

    /// Host↔device transfer time for `bytes` over PCIe-4 x16 (~25 GB/s).
    pub fn transfer_time(&self, bytes: u64) -> Seconds {
        Seconds(bytes as f64 / 25.0e9)
    }

    /// Active energy of an `m×n×k` operation on the SIMD² units, joules:
    /// per-unit active power (the §6.1 synthesis numbers, scaled from the
    /// 4×4 unit to the chip's unit count) over the kernel's runtime, plus
    /// a fixed SM/memory base draw.
    pub fn simd2_mmo_energy_joules(&self, op: OpKind, m: usize, n: usize, k: usize) -> f64 {
        let t = self.simd2_mmo_time(op, m, n, k).get();
        let units = (self.config.sm_count * self.config.simd2_units_per_sm) as f64;
        let unit_power = simd2_mxu::area::PowerModel::combined_watts(&simd2_semiring::EXTENDED_OPS)
            * PROCESS_POWER_SCALE_45NM_TO_8N;
        t * (units * unit_power + BASE_BOARD_WATTS)
    }

    /// Active energy of the same operation on CUDA cores, joules.
    pub fn cuda_mmo_energy_joules(&self, op: OpKind, m: usize, n: usize, k: usize) -> f64 {
        let t = self.cuda_mmo_time(op, m, n, k).get();
        t * (CUDA_CORE_ARRAY_WATTS + BASE_BOARD_WATTS)
    }
}

/// Non-compute board draw charged to every kernel (memory, fabric, I/O).
pub const BASE_BOARD_WATTS: f64 = 110.0;

/// Dynamic-power scale from the 45 nm synthesis node to Samsung 8N —
/// the same generational gap the §6.1 area scaling bridges
/// (capacitance and V² both shrink with the process).
pub const PROCESS_POWER_SCALE_45NM_TO_8N: f64 = 0.1;

/// Active power of the full CUDA-core array at sustained issue
/// (RTX 3080-class: ~320 W board minus the base draw).
pub const CUDA_CORE_ARRAY_WATTS: f64 = 210.0;

impl Default for Gpu {
    fn default() -> Self {
        Self::new(GpuConfig::default())
    }
}

/// Geometric mean helper used by every figure harness.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::{ALL_OPS, EXTENDED_OPS};

    fn speedup(gpu: &Gpu, op: OpKind, n: usize) -> f64 {
        gpu.simd2_mmo_time(op, n, n, n)
            .speedup_over(gpu.cuda_mmo_time(op, n, n, n))
    }

    #[test]
    fn saturated_per_op_speedups_match_fig9() {
        let gpu = Gpu::default();
        let n = 16384;
        // Paper Fig 9: plus-mul/plus-norm lowest (≈3.1–5.96), min/max-plus
        // and min/max-mul around 8–13, the shared-port trio up to 15.8.
        let s_pm = speedup(&gpu, OpKind::PlusMul, n);
        assert!((2.8..=3.4).contains(&s_pm), "plus-mul {s_pm}");
        let s_pn = speedup(&gpu, OpKind::PlusNorm, n);
        assert!((4.0..=6.0).contains(&s_pn), "plus-norm {s_pn}");
        for op in [OpKind::MinPlus, OpKind::MaxPlus] {
            let s = speedup(&gpu, op, n);
            assert!((11.0..=14.0).contains(&s), "{op} {s}");
        }
        for op in [OpKind::MinMul, OpKind::MaxMul] {
            let s = speedup(&gpu, op, n);
            assert!((9.0..=12.0).contains(&s), "{op} {s}");
        }
        for op in [OpKind::MinMax, OpKind::MaxMin, OpKind::OrAnd] {
            let s = speedup(&gpu, op, n);
            assert!((13.0..=15.8).contains(&s), "{op} {s}");
        }
    }

    #[test]
    fn gmean_lands_in_paper_band() {
        let gpu = Gpu::default();
        for n in [1024, 4096, 16384] {
            let sp: Vec<f64> = ALL_OPS.iter().map(|&op| speedup(&gpu, op, n)).collect();
            let g = geomean(&sp);
            assert!((8.0..=10.8).contains(&g), "n={n}: gmean {g}");
        }
    }

    #[test]
    fn speedup_ramps_with_size_and_saturates() {
        let gpu = Gpu::default();
        let sizes = [512, 1024, 2048, 4096, 8192, 16384];
        let mut prev = 0.0;
        for n in sizes {
            let s = speedup(&gpu, OpKind::MinPlus, n);
            assert!(s > prev, "n={n}: {s} <= {prev}");
            prev = s;
        }
        // Saturation: the last doubling adds < 5%.
        let s8 = speedup(&gpu, OpKind::MinPlus, 8192);
        let s16 = speedup(&gpu, OpKind::MinPlus, 16384);
        assert!(s16 / s8 < 1.05);
    }

    #[test]
    fn all_simd2_ops_cost_the_same_on_units() {
        let gpu = Gpu::default();
        let base = gpu.simd2_mmo_time(OpKind::PlusMul, 1024, 1024, 1024);
        for op in EXTENDED_OPS {
            assert_eq!(gpu.simd2_mmo_time(op, 1024, 1024, 1024), base, "{op}");
        }
    }

    #[test]
    fn padding_charges_ragged_shapes() {
        let gpu = Gpu::default();
        let exact = gpu.simd2_mmo_time(OpKind::PlusMul, 1024, 1024, 1024);
        let ragged = gpu.simd2_mmo_time(OpKind::PlusMul, 1009, 1009, 1009);
        assert_eq!(exact, ragged, "1009 pads to 1024");
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let gpu = Gpu::default();
        let t = gpu.simd2_mmo_time(OpKind::PlusMul, 16, 16, 16);
        assert!(t.get() < 2.0 * gpu.config().kernel_launch_seconds * 1.5);
        assert!(t.get() >= gpu.config().kernel_launch_seconds);
    }

    #[test]
    fn sparse_pipe_doubles_throughput() {
        let gpu = Gpu::default();
        let n = 8192;
        let dense = gpu.simd2_mmo_time(OpKind::MinPlus, n, n, n);
        let sparse = gpu.sparse_simd2_mmo_time(OpKind::MinPlus, n, n, n);
        let ratio = dense.get() / sparse.get();
        assert!((1.9..=2.05).contains(&ratio), "{ratio}");
    }

    #[test]
    fn custom_kernel_roofline() {
        let gpu = Gpu::default();
        // Memory-bound profile: few steps, many bytes.
        let mem_bound = KernelProfile {
            element_steps: 1.0e6,
            slots_per_step: 1.0,
            bytes: 76.0e9,
            launches: 1,
            efficiency: 1.0,
        };
        let t = gpu.kernel_time(&mem_bound);
        assert!((t.get() - 0.1).abs() < 0.01, "{t:?}"); // 76 GB / 760 GB/s
                                                        // Compute-bound profile.
        let cpu_bound = KernelProfile {
            element_steps: 14.88e12,
            slots_per_step: 1.0,
            bytes: 1.0,
            launches: 1,
            efficiency: 1.0,
        };
        assert!((gpu.kernel_time(&cpu_bound).get() - 1.0).abs() < 0.01);
    }

    #[test]
    fn launches_accumulate() {
        let gpu = Gpu::default();
        let p = KernelProfile {
            element_steps: 1.0,
            slots_per_step: 1.0,
            bytes: 1.0,
            launches: 1000,
            efficiency: 1.0,
        };
        assert!(gpu.kernel_time(&p).get() >= 1000.0 * gpu.config().kernel_launch_seconds);
    }

    #[test]
    fn previous_gen_is_slower_on_cuda_path() {
        let new = Gpu::new(GpuConfig::rtx3080());
        let old = Gpu::new(GpuConfig::previous_gen());
        let t_new = new.cuda_mmo_time(OpKind::MinPlus, 4096, 4096, 4096);
        let t_old = old.cuda_mmo_time(OpKind::MinPlus, 4096, 4096, 4096);
        assert!(t_old.get() > 2.0 * t_new.get());
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds(0.5);
        let b = Seconds(0.25);
        assert_eq!((a + b).get(), 0.75);
        assert_eq!(b.speedup_over(a), 2.0);
        assert_eq!(a.as_millis(), 500.0);
        let total: Seconds = [a, b, b].into_iter().sum();
        assert_eq!(total.get(), 1.0);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[4.0, 1.0]), 2.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn simd2_wins_on_energy_too() {
        // Same work, ~10× less time at comparable board power ⇒ the
        // energy gap tracks the speedup within a small factor.
        let gpu = Gpu::default();
        let n = 8192;
        let e_cuda = gpu.cuda_mmo_energy_joules(OpKind::MinPlus, n, n, n);
        let e_simd2 = gpu.simd2_mmo_energy_joules(OpKind::MinPlus, n, n, n);
        let energy_gain = e_cuda / e_simd2;
        let speedup = gpu
            .simd2_mmo_time(OpKind::MinPlus, n, n, n)
            .speedup_over(gpu.cuda_mmo_time(OpKind::MinPlus, n, n, n));
        assert!(energy_gain > 1.0, "{energy_gain}");
        assert!(
            (energy_gain / speedup - 1.0).abs() < 0.5,
            "{energy_gain} vs {speedup}"
        );
    }

    #[test]
    fn transfer_time_scales() {
        let gpu = Gpu::default();
        assert!((gpu.transfer_time(25_000_000_000).get() - 1.0).abs() < 1e-9);
    }
}
