//! Machine descriptions.

use serde::{Deserialize, Serialize};

/// Static description of a GPU-class machine with SIMD² units.
///
/// Defaults model the paper's testbed, an RTX 3080 (GA102, Ampere): 68
/// SMs, 128 fp32 CUDA lanes per SM, 4 tensor/SIMD² units per SM, 10 GB of
/// device memory at 760 GB/s.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// fp32 CUDA lanes per SM (ops issued per cycle at full rate).
    pub cuda_lanes_per_sm: usize,
    /// SIMD²/Tensor units per SM.
    pub simd2_units_per_sm: usize,
    /// `⊗`-lane operations one SIMD² unit retires per cycle (a pipelined
    /// 4×4 unit retires 4³ = 64).
    pub lane_ops_per_unit: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Device memory bandwidth, GB/s.
    pub dram_bw_gbps: f64,
    /// Device memory capacity, bytes.
    pub dram_capacity_bytes: u64,
    /// Fixed cost of one kernel launch, seconds.
    pub kernel_launch_seconds: f64,
    /// Half-saturation input dimension of the SIMD² pipe: utilisation is
    /// `n / (n + this)` for an `n × n` operand (wave quantisation +
    /// pipeline fill; drives the Fig 9 ramp).
    pub simd2_half_sat_dim: f64,
    /// Half-saturation input dimension of plain CUDA-core kernels (vector
    /// kernels saturate much earlier).
    pub cuda_half_sat_dim: f64,
    /// Structured-sparsity throughput multiplier of the sparse SIMD²/
    /// Tensor pipe (2:4 sparsity doubles throughput on Ampere).
    pub sparse_tensor_speedup: f64,
}

impl GpuConfig {
    /// The paper's testbed: RTX 3080 with SIMD² units in place of its
    /// Tensor Cores.
    pub fn rtx3080() -> Self {
        Self {
            name: "RTX 3080-class (SIMD2)".to_owned(),
            sm_count: 68,
            cuda_lanes_per_sm: 128,
            simd2_units_per_sm: 4,
            lane_ops_per_unit: 64,
            clock_ghz: 1.71,
            dram_bw_gbps: 760.0,
            dram_capacity_bytes: 10 * 1024 * 1024 * 1024,
            kernel_launch_seconds: 5.0e-6,
            simd2_half_sat_dim: 200.0,
            cuda_half_sat_dim: 48.0,
            sparse_tensor_speedup: 2.0,
        }
    }

    /// The previous-generation part referenced in §6.3 ("the RTX 3080 GPU
    /// has twice as many CUDA cores than the previous generation"): an
    /// RTX 2080-class machine.
    pub fn previous_gen() -> Self {
        Self {
            name: "RTX 2080-class".to_owned(),
            sm_count: 46,
            cuda_lanes_per_sm: 64,
            simd2_units_per_sm: 8,
            lane_ops_per_unit: 32,
            clock_ghz: 1.71,
            dram_bw_gbps: 448.0,
            dram_capacity_bytes: 8 * 1024 * 1024 * 1024,
            kernel_launch_seconds: 5.0e-6,
            simd2_half_sat_dim: 200.0,
            cuda_half_sat_dim: 48.0,
            sparse_tensor_speedup: 1.0,
        }
    }

    /// Peak CUDA-lane op throughput, ops/second (full-rate classes).
    pub fn cuda_ops_per_second(&self) -> f64 {
        self.sm_count as f64 * self.cuda_lanes_per_sm as f64 * self.clock_ghz * 1.0e9
    }

    /// Peak SIMD² lane-op throughput, ops/second.
    pub fn simd2_ops_per_second(&self) -> f64 {
        self.sm_count as f64
            * self.simd2_units_per_sm as f64
            * self.lane_ops_per_unit as f64
            * self.clock_ghz
            * 1.0e9
    }

    /// Device memory bandwidth, bytes/second.
    pub fn dram_bytes_per_second(&self) -> f64 {
        self.dram_bw_gbps * 1.0e9
    }

    /// Whether an allocation plan of `bytes` fits device memory.
    pub fn fits_in_memory(&self, bytes: u64) -> bool {
        bytes <= self.dram_capacity_bytes
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx3080()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3080_headline_numbers() {
        let g = GpuConfig::rtx3080();
        // ~29.8 TFLOP/s fp32 fma → 14.9 G ops/lane-issue terms ≈ 128*68*1.71G.
        let cuda = g.cuda_ops_per_second();
        assert!((cuda - 14.88e12).abs() / 14.88e12 < 0.01, "{cuda:e}");
        // SIMD² pipe: 4 units × 64 lanes = 2× the CUDA lane count.
        assert_eq!(g.simd2_ops_per_second() / cuda, 2.0);
        assert!(g.fits_in_memory(10 * 1024 * 1024 * 1024));
        assert!(!g.fits_in_memory(10 * 1024 * 1024 * 1024 + 1));
    }

    #[test]
    fn previous_gen_has_half_the_cuda_lanes() {
        let new = GpuConfig::rtx3080();
        let old = GpuConfig::previous_gen();
        assert_eq!(new.cuda_lanes_per_sm, old.cuda_lanes_per_sm * 2);
        assert!(old.cuda_ops_per_second() < new.cuda_ops_per_second() / 2.0);
    }

    #[test]
    fn default_is_the_testbed() {
        assert_eq!(GpuConfig::default(), GpuConfig::rtx3080());
    }
}
