//! Representation-aware sparse execution backend.
//!
//! [`SparseTiledBackend`] implements the core [`Backend`] trait, so any
//! algorithm written against the trait — the closure solvers, the plan
//! recorder/executor, the serving layer — runs on sparse operands
//! unchanged. Representation declarations arrive through
//! [`Backend::mmo_ref`]: an operand declared [`OperandRepr::Csr`] is
//! walked through a Gustavson-style compressed kernel, one declared
//! [`OperandRepr::Structured24`] takes the 2:4 sparse-pipe fast path
//! ([`Compressed24`]), and dense declarations fall back to a scalar
//! kernel that reproduces [`simd2_matrix::reference::mmo`] bit for bit.
//!
//! **The bit-identity contract.** A representation declaration is a
//! schedule hint, never a semantic change: every compressed kernel skips
//! only terms that combine through the algebra's annihilator
//! ([`OpKind::no_edge_f32`]), and such terms leave the reduction
//! bit-identical for every extension op — except max-mul, where a skipped
//! `0.0` product can still lift a `-∞`-seeded accumulator; those rows
//! fold a single `⊕ 0.0` correction at the end, exactly reproducing the
//! dense fold. Outputs are therefore bit-identical between the dense
//! datapath and every compressed kernel, at any worker count.
//!
//! **Sharded CSR panels.** Row panels of the output are disjoint slabs
//! handed to a [`std::thread::scope`] worker pool via `split_at_mut`;
//! each worker folds its rows in the reference order and returns its own
//! [`SparseOpCount`], merged in panel order. A panicking worker is
//! contained and surfaces as [`BackendError::WorkerPanic`] after the
//! remaining workers drain.
//!
//! The Fig 13 pruning experiment (`A` forced through 2:4 magnitude
//! pruning, losses measured honestly) lives on as
//! [`SparseTiledBackend::mmo_pruned`] and [`pruning_quality`].

use std::ops::Range;

use simd2::{Backend, BackendError, MatrixRef, MmoArgs, OpCount, OperandRepr, Parallelism};
use simd2_matrix::{reference, Matrix, ShapeError};
use simd2_mxu::Simd2Unit;
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::OpKind;

use crate::structured::{prune_2_4, Compressed24};
use crate::Csr;

/// Work counters of the sparse backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparseOpCount {
    /// Whole-matrix operations executed.
    pub matrix_mmos: u64,
    /// 16×16 tile operations executed on the sparse pipe (the
    /// [`SparseTiledBackend::mmo_pruned`] datapath).
    pub tile_mmos: u64,
    /// Operand values discarded by 2:4 pruning across all operations.
    pub pruned_values: u64,
    /// Whole-matrix operations that ran through a compressed kernel
    /// (CSR Gustavson or the 2:4 fast path) rather than the dense
    /// datapath.
    pub sparse_mmos: u64,
    /// Semiring `⊕(⊗)` terms actually folded by the scalar kernels.
    pub fma_terms: u64,
    /// Annihilator terms skipped by compressed kernels relative to the
    /// dense `m·n·k` term count.
    pub skipped_terms: u64,
}

impl std::ops::AddAssign for SparseOpCount {
    fn add_assign(&mut self, rhs: Self) {
        self.matrix_mmos += rhs.matrix_mmos;
        self.tile_mmos += rhs.tile_mmos;
        self.pruned_values += rhs.pruned_values;
        self.sparse_mmos += rhs.sparse_mmos;
        self.fma_terms += rhs.fma_terms;
        self.skipped_terms += rhs.skipped_terms;
    }
}

/// A representation-aware whole-matrix engine: dense scalar execution
/// bit-identical to the reference oracle, Gustavson CSR kernels and a
/// 2:4 compressed fast path behind [`Backend::mmo_ref`], and row-panel
/// sharding across a scoped worker pool.
///
/// # Example
///
/// ```
/// use simd2::Backend;
/// use simd2_matrix::Matrix;
/// use simd2_semiring::OpKind;
/// use simd2_sparse::backend::SparseTiledBackend;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]); // violates 2:4
/// let b = Matrix::filled(4, 1, 1.0);
/// let c = Matrix::zeros(1, 1);
/// let mut be = SparseTiledBackend::new();
///
/// // The trait datapath is exact: no silent pruning.
/// let d = be.mmo(OpKind::PlusMul, &a, &b, &c)?;
/// assert_eq!(d[(0, 0)], 10.0);
///
/// // The Fig 13 experiment prunes `A` to 2:4 first: 3·1 + 4·1.
/// let d = be.mmo_pruned(OpKind::PlusMul, &a, &b, &c).unwrap();
/// assert_eq!(d[(0, 0)], 7.0);
/// assert_eq!(be.sparse_count().pruned_values, 2);
/// # Ok::<(), simd2::BackendError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseTiledBackend {
    unit: Simd2Unit,
    reduced: bool,
    parallelism: Parallelism,
    count: SparseOpCount,
}

/// One worker's contribution: scalar-kernel term counters, merged back
/// into [`SparseOpCount`] in panel order.
#[derive(Clone, Copy, Debug, Default)]
struct TermCount {
    fma_terms: u64,
    skipped_terms: u64,
}

impl std::ops::AddAssign for TermCount {
    fn add_assign(&mut self, rhs: Self) {
        self.fma_terms += rhs.fma_terms;
        self.skipped_terms += rhs.skipped_terms;
    }
}

/// Stringifies a contained worker-panic payload (the `&str` / `String`
/// cases cover `panic!` and `assert!`).
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Splits `rows` output rows into `workers` contiguous, near-equal
/// panels (the first `rows % workers` panels take one extra row).
fn row_panels(rows: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, rows.max(1));
    let base = rows / workers;
    let extra = rows % workers;
    let mut panels = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        panels.push(start..start + len);
        start += len;
    }
    panels
}

impl SparseTiledBackend {
    /// Creates the backend: exact (fp32) scalar kernels, sequential
    /// schedule, default fp16-input unit for the pruned-pipe path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-pool configuration for row-panel sharding.
    /// Results are bit-identical at any worker count.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Quantizes `A`/`B` element loads through fp16 (accumulation stays
    /// fp32) — the tile pipe's operand precision, applied uniformly to
    /// the dense and compressed kernels so they stay bit-identical to
    /// each other.
    pub fn with_reduced_precision(mut self, reduced: bool) -> Self {
        self.reduced = reduced;
        self
    }

    /// The configured worker-pool setting.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Extended work counters accumulated so far (a superset of the
    /// trait-level [`Backend::op_count`]).
    pub fn sparse_count(&self) -> SparseOpCount {
        self.count
    }

    /// Executes `D = C ⊕ (A|₂:₄ ⊗ B)`: `A` is pruned to 2:4 structure
    /// (round-tripped through the compressed format, as the hardware
    /// would consume it), then the tiled fp16 unit computes as usual —
    /// the Fig 13 experiment, which *changes the answer* when `A` is
    /// non-compliant and is therefore not part of the [`Backend`]
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when operand shapes are incompatible.
    pub fn mmo_pruned(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, ShapeError> {
        reference::check_mmo_shapes(a, b, c)?;
        let zero = op.no_edge_f32().unwrap_or(0.0);
        let pruned = prune_2_4(a, op);
        let nnz_before = a.as_slice().iter().filter(|&&x| x != zero).count();
        let compressed =
            Compressed24::compress(&pruned, zero).expect("prune_2_4 output is always compliant");
        self.count.pruned_values += (nnz_before - compressed.nnz()) as u64;

        // Tiled execution on the decompressed operand; the sparse pipe
        // computes the same values in half the cycles.
        let a_sparse = compressed.decompress();
        let grid = simd2_matrix::tiling::TileGrid::new(
            a.rows(),
            b.cols(),
            a.cols(),
            simd2_matrix::ISA_TILE,
        );
        let mut d = Matrix::zeros(a.rows(), b.cols());
        for (ti, tj) in grid.output_coords() {
            let mut acc =
                simd2_matrix::tiling::load_c_tile::<{ simd2_matrix::ISA_TILE }>(op, c, ti, tj);
            for tk in 0..grid.k_tiles {
                let at = simd2_matrix::tiling::load_a_tile::<{ simd2_matrix::ISA_TILE }>(
                    op, &a_sparse, ti, tk,
                );
                let bt =
                    simd2_matrix::tiling::load_b_tile::<{ simd2_matrix::ISA_TILE }>(op, b, tk, tj);
                acc = self.unit.execute(op, &at, &bt, &acc);
                self.count.tile_mmos += 1;
            }
            simd2_matrix::tiling::store_d_tile(&mut d, &acc, ti, tj);
        }
        self.count.matrix_mmos += 1;
        Ok(d)
    }

    /// fp16 load quantisation when the reduced knob is on.
    #[inline]
    fn load(&self, x: f32) -> f32 {
        if self.reduced {
            quantize_f16(x)
        } else {
            x
        }
    }

    /// Runs `kernel` over row panels of an `m×n` output, sequentially or
    /// across a scoped worker pool, merging per-worker term counters in
    /// panel order. Bit-identity across worker counts holds because the
    /// panels are disjoint and each row's fold order never changes.
    fn run_panels<F>(
        &self,
        m: usize,
        n: usize,
        workers: usize,
        kernel: F,
    ) -> Result<(Matrix, TermCount), BackendError>
    where
        F: Fn(Range<usize>, &mut [f32]) -> TermCount + Sync,
    {
        let mut d = Matrix::zeros(m, n);
        let panels = row_panels(m, workers);
        let mut total = TermCount::default();
        if panels.len() <= 1 {
            let range = 0..m;
            total += kernel(range, d.as_mut_slice());
            return Ok((d, total));
        }
        let mut slabs: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(panels.len());
        let mut rest = d.as_mut_slice();
        for range in panels {
            let (head, tail) = rest.split_at_mut((range.end - range.start) * n);
            slabs.push((range, head));
            rest = tail;
        }
        let kernel = &kernel;
        let joined: Vec<Result<TermCount, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slabs
                .into_iter()
                .map(|(range, slab)| scope.spawn(move || kernel(range, slab)))
                .collect();
            // Join every worker (draining the pool even past a panic)
            // before reporting, so a contained panic never leaks threads.
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|payload| panic_payload_message(payload.as_ref()))
                })
                .collect()
        });
        for (panel, outcome) in joined.into_iter().enumerate() {
            match outcome {
                Ok(count) => total += count,
                Err(payload) => return Err(BackendError::WorkerPanic { panel, payload }),
            }
        }
        Ok((d, total))
    }

    /// Dense scalar rows: the reference triple loop restricted to a row
    /// range, with optional fp16 load quantisation.
    fn dense_rows(
        &self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
        rows: Range<usize>,
        out: &mut [f32],
    ) -> TermCount {
        let (n, k) = (b.cols(), a.cols());
        for (local, i) in rows.enumerate() {
            let arow = a.row(i);
            let orow = &mut out[local * n..(local + 1) * n];
            for (j, slot) in orow.iter_mut().enumerate() {
                let mut acc = op.reduce_identity_f32();
                for (l, &av) in arow.iter().enumerate().take(k) {
                    acc = op.fma_f32(acc, self.load(av), self.load(b[(l, j)]));
                }
                *slot = op.reduce_f32(c[(i, j)], acc);
            }
        }
        TermCount {
            fma_terms: (n * k) as u64,
            skipped_terms: 0,
        }
    }

    /// CSR `A` × dense `B` rows (Gustavson outer loop over the stored
    /// entries of each `A` row, inner dense sweep over `B`'s columns).
    /// Per-`(i,j)` terms arrive in ascending-`k` order, so the fold is
    /// bit-identical to [`Self::dense_rows`] modulo skipped-annihilator
    /// terms, which are exact no-ops (max-mul corrected at row end).
    fn csr_dense_rows(
        &self,
        op: OpKind,
        a: &Csr,
        b: &Matrix,
        c: &Matrix,
        rows: Range<usize>,
        out: &mut [f32],
    ) -> TermCount {
        let (n, k) = (b.cols(), a.cols());
        let mut count = TermCount::default();
        for (local, i) in rows.enumerate() {
            let orow = &mut out[local * n..(local + 1) * n];
            let nnz = a.row_entries(i).count();
            count.fma_terms += (nnz * n) as u64;
            count.skipped_terms += ((k - nnz) * n) as u64;
            for (j, slot) in orow.iter_mut().enumerate() {
                let mut acc = op.reduce_identity_f32();
                for (l, av) in a.row_entries(i) {
                    acc = op.fma_f32(acc, self.load(av), self.load(b[(l, j)]));
                }
                if op == OpKind::MaxMul && nnz < k {
                    // Skipped 0·b products still fold a 0.0 into a
                    // max-reduce; one fold reproduces them all exactly.
                    acc = op.reduce_f32(acc, 0.0);
                }
                *slot = op.reduce_f32(c[(i, j)], acc);
            }
        }
        count
    }

    /// Dense `A` × CSR `B` rows: the IKJ loop, scattering each stored
    /// `B(k, j)` into a per-row accumulator. Iterating `k` ascending in
    /// the outer loop keeps every `(i,j)` fold in ascending-`k` order.
    /// `col_nnz` holds per-column stored-entry counts of `B` (shared by
    /// all workers) for the max-mul end correction.
    #[allow(clippy::too_many_arguments)]
    fn dense_csr_rows(
        &self,
        op: OpKind,
        a: &Matrix,
        b: &Csr,
        c: &Matrix,
        col_nnz: &[usize],
        rows: Range<usize>,
        out: &mut [f32],
    ) -> TermCount {
        let (n, k) = (b.cols(), a.cols());
        let mut count = TermCount::default();
        let mut acc = vec![op.reduce_identity_f32(); n];
        for (local, i) in rows.enumerate() {
            acc.fill(op.reduce_identity_f32());
            let arow = a.row(i);
            for (l, &av) in arow.iter().enumerate().take(k) {
                let av = self.load(av);
                for (j, bv) in b.row_entries(l) {
                    acc[j] = op.fma_f32(acc[j], av, self.load(bv));
                    count.fma_terms += 1;
                }
            }
            let orow = &mut out[local * n..(local + 1) * n];
            for (j, slot) in orow.iter_mut().enumerate() {
                let mut v = acc[j];
                count.skipped_terms += (k - col_nnz[j]) as u64;
                if op == OpKind::MaxMul && col_nnz[j] < k {
                    v = op.reduce_f32(v, 0.0);
                }
                *slot = op.reduce_f32(c[(i, j)], v);
            }
        }
        count
    }

    /// CSR `A` × CSR `B` rows: Gustavson's algorithm with a dense SPA
    /// accumulator per output row plus a contribution counter per
    /// column (for the max-mul end correction). The outer walk over
    /// `A`'s stored `k` is ascending, so each `(i,j)` fold matches the
    /// dense order over the surviving terms.
    #[allow(clippy::too_many_arguments)]
    fn csr_csr_rows(
        &self,
        op: OpKind,
        a: &Csr,
        b: &Csr,
        c: &Matrix,
        k_dim: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) -> TermCount {
        let n = b.cols();
        let mut count = TermCount::default();
        let mut acc = vec![op.reduce_identity_f32(); n];
        let mut contributions = vec![0usize; n];
        for (local, i) in rows.enumerate() {
            acc.fill(op.reduce_identity_f32());
            contributions.fill(0);
            for (l, av) in a.row_entries(i) {
                let av = self.load(av);
                for (j, bv) in b.row_entries(l) {
                    acc[j] = op.fma_f32(acc[j], av, self.load(bv));
                    contributions[j] += 1;
                    count.fma_terms += 1;
                }
            }
            let orow = &mut out[local * n..(local + 1) * n];
            for (j, slot) in orow.iter_mut().enumerate() {
                let mut v = acc[j];
                count.skipped_terms += (k_dim - contributions[j]) as u64;
                if op == OpKind::MaxMul && contributions[j] < k_dim {
                    v = op.reduce_f32(v, 0.0);
                }
                *slot = op.reduce_f32(c[(i, j)], v);
            }
        }
        count
    }

    /// 2:4-structured `A` × dense `B` rows: the compressed operand is
    /// walked slot by slot ([`Compressed24::row_slots`], ascending `k`),
    /// which is exactly how the sparse tensor pipe skips pruned lanes.
    fn structured_rows(
        &self,
        op: OpKind,
        a24: &Compressed24,
        b: &Matrix,
        c: &Matrix,
        rows: Range<usize>,
        out: &mut [f32],
    ) -> TermCount {
        let (n, k) = (b.cols(), a24.cols());
        let mut count = TermCount::default();
        for (local, i) in rows.enumerate() {
            let orow = &mut out[local * n..(local + 1) * n];
            let nnz = a24.row_slots(i).count();
            count.fma_terms += (nnz * n) as u64;
            count.skipped_terms += ((k - nnz) * n) as u64;
            for (j, slot) in orow.iter_mut().enumerate() {
                let mut acc = op.reduce_identity_f32();
                for (l, av) in a24.row_slots(i) {
                    acc = op.fma_f32(acc, self.load(av), self.load(b[(l, j)]));
                }
                if op == OpKind::MaxMul && nnz < k {
                    acc = op.reduce_f32(acc, 0.0);
                }
                *slot = op.reduce_f32(c[(i, j)], acc);
            }
        }
        count
    }

    /// Shape-checked, repr-validated execution core shared by the trait
    /// entry points. `workers` is already resolved.
    fn execute(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
        workers: usize,
    ) -> Result<Matrix, BackendError> {
        let (m, n) = (a.matrix.rows(), b.matrix.cols());
        let k = a.matrix.cols();
        let sparse_step = !(a.repr.is_dense() && b.repr.is_dense());
        let (d, terms) = match (a.repr, b.repr) {
            (OperandRepr::Structured24 { .. }, _) => {
                let zero = a.repr.zero().expect("structured repr carries a sentinel");
                let a24 = Compressed24::compress(a.matrix, zero)
                    .expect("validated 2:4-compliant operand");
                self.run_panels(m, n, workers, |rows, out| {
                    self.structured_rows(op, &a24, b.matrix, c.matrix, rows, out)
                })?
            }
            (OperandRepr::Csr { .. }, OperandRepr::Csr { .. })
            | (OperandRepr::Csr { .. }, OperandRepr::Structured24 { .. }) => {
                let az = a.repr.zero().expect("csr repr carries a sentinel");
                let bz = b.repr.zero().expect("sparse repr carries a sentinel");
                let acsr = Csr::from_dense(a.matrix, az).expect("validated non-NaN sentinel");
                let bcsr = Csr::from_dense(b.matrix, bz).expect("validated non-NaN sentinel");
                self.run_panels(m, n, workers, |rows, out| {
                    self.csr_csr_rows(op, &acsr, &bcsr, c.matrix, k, rows, out)
                })?
            }
            (OperandRepr::Csr { .. }, OperandRepr::Dense) => {
                let az = a.repr.zero().expect("csr repr carries a sentinel");
                let acsr = Csr::from_dense(a.matrix, az).expect("validated non-NaN sentinel");
                self.run_panels(m, n, workers, |rows, out| {
                    self.csr_dense_rows(op, &acsr, b.matrix, c.matrix, rows, out)
                })?
            }
            (OperandRepr::Dense, OperandRepr::Csr { .. })
            | (OperandRepr::Dense, OperandRepr::Structured24 { .. }) => {
                let bz = b.repr.zero().expect("sparse repr carries a sentinel");
                let bcsr = Csr::from_dense(b.matrix, bz).expect("validated non-NaN sentinel");
                let mut col_nnz = vec![0usize; n];
                for l in 0..k {
                    for (j, _) in bcsr.row_entries(l) {
                        col_nnz[j] += 1;
                    }
                }
                self.run_panels(m, n, workers, |rows, out| {
                    self.dense_csr_rows(op, a.matrix, &bcsr, c.matrix, &col_nnz, rows, out)
                })?
            }
            (OperandRepr::Dense, OperandRepr::Dense) => {
                self.run_panels(m, n, workers, |rows, out| {
                    self.dense_rows(op, a.matrix, b.matrix, c.matrix, rows, out)
                })?
            }
        };
        self.count.matrix_mmos += 1;
        self.count.fma_terms += terms.fma_terms;
        self.count.skipped_terms += terms.skipped_terms;
        if sparse_step {
            self.count.sparse_mmos += 1;
        }
        Ok(d)
    }
}

impl Backend for SparseTiledBackend {
    fn name(&self) -> &'static str {
        "sparse-tiled"
    }

    fn reduced_precision(&self) -> bool {
        self.reduced
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        reference::check_mmo_shapes(a, b, c)?;
        let workers = self.parallelism.worker_count();
        self.execute(
            op,
            MatrixRef::dense(a),
            MatrixRef::dense(b),
            MatrixRef::dense(c),
            workers,
        )
    }

    fn mmo_sequential(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        reference::check_mmo_shapes(a, b, c)?;
        self.execute(
            op,
            MatrixRef::dense(a),
            MatrixRef::dense(b),
            MatrixRef::dense(c),
            1,
        )
    }

    fn mmo_ref(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
    ) -> Result<Matrix, BackendError> {
        simd2::validate::check_mmo_operands_ref(op, a, b, c)?;
        let workers = self.parallelism.worker_count();
        self.execute(op, a, b, c, workers)
    }

    fn mmo_batch(&mut self, steps: &[MmoArgs<'_>]) -> Result<Vec<Matrix>, BackendError> {
        // Unlike the trait default this routes each step's declared
        // representations through to the compressed kernels.
        steps
            .iter()
            .map(|s| self.mmo_ref(s.op, s.a_ref(), s.b_ref(), s.c_ref()))
            .collect()
    }

    fn force_sequential(&mut self) -> bool {
        if self.parallelism == Parallelism::Sequential {
            return false;
        }
        self.parallelism = Parallelism::Sequential;
        true
    }

    fn op_count(&self) -> OpCount {
        OpCount {
            matrix_mmos: self.count.matrix_mmos,
            tile_mmos: self.count.tile_mmos,
            tile_loads: 0,
            tile_stores: 0,
        }
    }

    fn reset_count(&mut self) {
        self.count = SparseOpCount::default();
    }
}

/// Quality of a sparse-pipe closure versus the dense solution: fraction
/// of entries that still agree exactly, and the worst deviation on the
/// finite entries — the §6.5 trade the paper leaves to pre-processing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruningQuality {
    /// Fraction of matching entries (exact, including infinities).
    pub exact_match_fraction: f64,
    /// Worst absolute deviation over entries finite in both.
    pub max_finite_deviation: f32,
}

/// Compares a sparse-pipe result against the dense oracle.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn pruning_quality(dense: &Matrix, sparse: &Matrix) -> PruningQuality {
    assert_eq!(dense.shape(), sparse.shape());
    let mut matches = 0usize;
    let mut worst = 0.0f32;
    for (a, b) in dense.as_slice().iter().zip(sparse.as_slice()) {
        if a == b {
            matches += 1;
        } else if a.is_finite() && b.is_finite() {
            worst = worst.max((a - b).abs());
        } else {
            worst = f32::INFINITY;
        }
    }
    PruningQuality {
        exact_match_fraction: matches as f64 / dense.len() as f64,
        max_finite_deviation: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use simd2_matrix::gen;
    use simd2_matrix::Graph;
    use simd2_semiring::ALL_OPS;

    /// A seeded operand in `op`'s value domain with roughly
    /// `density` of its entries kept and the rest at `zero`.
    fn sparse_operand(rows: usize, cols: usize, zero: f32, density: f64, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(0.5..9.5)
            } else {
                zero
            }
        })
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn dense_trait_path_is_bit_identical_to_reference() {
        for (s, &op) in ALL_OPS.iter().enumerate() {
            let a = sparse_operand(9, 7, 0.0, 1.0, 100 + s as u64);
            let b = sparse_operand(7, 11, 0.0, 1.0, 200 + s as u64);
            let c = sparse_operand(9, 11, 0.0, 1.0, 300 + s as u64);
            let mut be = SparseTiledBackend::new();
            let got = be.mmo(op, &a, &b, &c).unwrap();
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            assert_eq!(bits(&got), bits(&want), "{op}");
        }
        let mut be = SparseTiledBackend::new();
        assert_eq!(be.name(), "sparse-tiled");
        assert!(!be.reduced_precision());
        be.mmo(
            OpKind::PlusMul,
            &Matrix::zeros(2, 2),
            &Matrix::zeros(2, 2),
            &Matrix::zeros(2, 2),
        )
        .unwrap();
        assert_eq!(be.op_count().matrix_mmos, 1);
        be.reset_count();
        assert_eq!(be.sparse_count(), SparseOpCount::default());
    }

    #[test]
    fn every_sparse_kernel_is_bit_identical_to_the_dense_datapath() {
        // All ops with a no-edge annihilator (plus-norm has no sparse
        // lowering), every operand-side combination of declarations.
        for (s, &op) in ALL_OPS.iter().enumerate() {
            let Some(zero) = op.no_edge_f32() else {
                continue;
            };
            let a = sparse_operand(17, 13, zero, 0.3, 400 + s as u64);
            let b = sparse_operand(13, 15, zero, 0.3, 500 + s as u64);
            let c = sparse_operand(17, 15, zero, 0.8, 600 + s as u64);
            let mut be = SparseTiledBackend::new();
            let want = be.mmo(op, &a, &b, &c).unwrap();
            let csr = OperandRepr::csr(zero);
            for (ra, rb) in [
                (csr, OperandRepr::Dense),
                (OperandRepr::Dense, csr),
                (csr, csr),
            ] {
                let got = be
                    .mmo_ref(
                        op,
                        MatrixRef::new(&a, ra),
                        MatrixRef::new(&b, rb),
                        MatrixRef::dense(&c),
                    )
                    .unwrap();
                assert_eq!(bits(&got), bits(&want), "{op} {}×{}", ra.name(), rb.name());
            }
            assert!(be.sparse_count().sparse_mmos >= 3, "{op}");
            assert!(be.sparse_count().skipped_terms > 0, "{op}");
        }
    }

    #[test]
    fn structured_fast_path_is_bit_identical_to_dense() {
        for op in [
            OpKind::PlusMul,
            OpKind::MinPlus,
            OpKind::MaxMul,
            OpKind::OrAnd,
        ] {
            let zero = op.no_edge_f32().unwrap();
            let a = prune_2_4(&sparse_operand(12, 20, zero, 0.9, 7), op);
            let b = sparse_operand(20, 9, zero, 0.9, 8);
            let c = sparse_operand(12, 9, zero, 0.9, 9);
            let mut be = SparseTiledBackend::new();
            let want = be.mmo(op, &a, &b, &c).unwrap();
            let got = be
                .mmo_ref(
                    op,
                    MatrixRef::new(&a, OperandRepr::structured(zero)),
                    MatrixRef::dense(&b),
                    MatrixRef::dense(&c),
                )
                .unwrap();
            assert_eq!(bits(&got), bits(&want), "{op}");
        }
    }

    #[test]
    fn sharded_panels_are_bit_identical_at_every_worker_count() {
        let op = OpKind::MinPlus;
        let zero = op.no_edge_f32().unwrap();
        let a = sparse_operand(33, 29, zero, 0.2, 42);
        let b = sparse_operand(29, 31, zero, 0.2, 43);
        let c = Matrix::filled(33, 31, zero);
        let mut seq = SparseTiledBackend::new();
        let want = seq
            .mmo_ref(
                op,
                MatrixRef::new(&a, OperandRepr::csr(zero)),
                MatrixRef::new(&b, OperandRepr::csr(zero)),
                MatrixRef::dense(&c),
            )
            .unwrap();
        for workers in [1, 2, 4, 8] {
            let mut be = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(workers));
            let got = be
                .mmo_ref(
                    op,
                    MatrixRef::new(&a, OperandRepr::csr(zero)),
                    MatrixRef::new(&b, OperandRepr::csr(zero)),
                    MatrixRef::dense(&c),
                )
                .unwrap();
            assert_eq!(bits(&got), bits(&want), "workers={workers}");
            // Panel-order merge keeps counters exact, not approximate.
            assert_eq!(be.sparse_count(), seq.sparse_count(), "workers={workers}");
        }
    }

    #[test]
    fn reduced_precision_keeps_sparse_and_dense_paths_aligned() {
        let op = OpKind::PlusMul;
        let a = sparse_operand(10, 14, 0.0, 0.4, 77);
        let b = sparse_operand(14, 6, 0.0, 0.4, 78);
        let c = sparse_operand(10, 6, 0.0, 1.0, 79);
        let mut be = SparseTiledBackend::new().with_reduced_precision(true);
        assert!(be.reduced_precision());
        let want = be.mmo(op, &a, &b, &c).unwrap();
        let got = be
            .mmo_ref(
                op,
                MatrixRef::new(&a, OperandRepr::csr(0.0)),
                MatrixRef::dense(&b),
                MatrixRef::dense(&c),
            )
            .unwrap();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn batched_steps_route_representations_through() {
        let op = OpKind::MinPlus;
        let zero = op.no_edge_f32().unwrap();
        let a = sparse_operand(8, 8, zero, 0.25, 91);
        let b = sparse_operand(8, 8, zero, 0.25, 92);
        let c = Matrix::filled(8, 8, zero);
        let mut sparse_args = MmoArgs::new(op, &a, &b, &c);
        sparse_args.reprs = [
            OperandRepr::csr(zero),
            OperandRepr::csr(zero),
            OperandRepr::Dense,
        ];
        let steps = [MmoArgs::new(op, &a, &b, &c), sparse_args];
        let mut be = SparseTiledBackend::new();
        let out = be.mmo_batch(&steps).unwrap();
        assert_eq!(bits(&out[0]), bits(&out[1]));
        assert_eq!(be.sparse_count().matrix_mmos, 2);
        assert_eq!(be.sparse_count().sparse_mmos, 1);
    }

    #[test]
    fn term_accounting_is_exact_for_csr_a() {
        let op = OpKind::PlusMul;
        let a = sparse_operand(6, 10, 0.0, 0.3, 13);
        let b = sparse_operand(10, 4, 0.0, 1.0, 14);
        let c = Matrix::zeros(6, 4);
        let mut be = SparseTiledBackend::new();
        be.mmo_ref(
            op,
            MatrixRef::new(&a, OperandRepr::csr(0.0)),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c),
        )
        .unwrap();
        let count = be.sparse_count();
        // Folded + skipped terms together tile the dense m·n·k space.
        assert_eq!(count.fma_terms + count.skipped_terms, 6 * 4 * 10);
        let nnz = a.as_slice().iter().filter(|&&x| x != 0.0).count() as u64;
        assert_eq!(count.fma_terms, nnz * 4);
    }

    #[test]
    fn invalid_declarations_are_rejected() {
        let a = Matrix::zeros(4, 4);
        let c = Matrix::zeros(4, 4);
        let mut be = SparseTiledBackend::new();
        // Wrong sentinel for the op's annihilator.
        let err = be
            .mmo_ref(
                OpKind::MinPlus,
                MatrixRef::new(&a, OperandRepr::csr(0.0)),
                MatrixRef::dense(&a),
                MatrixRef::dense(&c),
            )
            .unwrap_err();
        assert!(matches!(err, BackendError::Repr { .. }), "{err}");
        // Non-compliant 2:4 declaration.
        let dense_row = Matrix::filled(4, 4, 1.0);
        let err = be
            .mmo_ref(
                OpKind::PlusMul,
                MatrixRef::new(&dense_row, OperandRepr::structured(0.0)),
                MatrixRef::dense(&a),
                MatrixRef::dense(&c),
            )
            .unwrap_err();
        assert!(err.to_string().contains("2:4"), "{err}");
        assert_eq!(be.sparse_count().matrix_mmos, 0);
    }

    #[test]
    fn force_sequential_demotes_the_pool() {
        let mut be = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(4));
        assert_eq!(be.parallelism(), Parallelism::Threads(4));
        assert!(be.force_sequential());
        assert!(!be.force_sequential());
        assert_eq!(be.parallelism(), Parallelism::Sequential);
    }

    #[test]
    fn row_panels_cover_without_overlap() {
        for (rows, workers) in [(10, 3), (4, 8), (1, 1), (16, 4), (7, 2)] {
            let panels = row_panels(rows, workers);
            assert_eq!(panels[0].start, 0);
            assert_eq!(panels.last().unwrap().end, rows);
            for pair in panels.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            assert!(panels.len() <= workers.max(1));
        }
    }

    #[test]
    fn pruning_count_is_reported() {
        let a = Matrix::filled(4, 8, 1.0); // every group violates 2:4
        let b = Matrix::filled(8, 4, 1.0);
        let c = Matrix::zeros(4, 4);
        let mut be = SparseTiledBackend::new();
        be.mmo_pruned(OpKind::PlusMul, &a, &b, &c).unwrap();
        // 4 rows × 2 groups × 2 pruned each.
        assert_eq!(be.sparse_count().pruned_values, 16);
        assert_eq!(be.sparse_count().matrix_mmos, 1);
        assert!(be.sparse_count().tile_mmos > 0);
    }

    #[test]
    fn dense_compliant_inputs_pass_through_unchanged() {
        // A graph sparse enough to satisfy 2:4 naturally loses nothing.
        let g = gen::gnp_graph(32, 0.03, 1.0, 9.0, 3);
        let adj = g.adjacency(OpKind::MinPlus);
        if !crate::structured::is_2_4_compliant(&adj, f32::INFINITY) {
            return; // rare seed; the property is covered below anyway
        }
        let c = Matrix::filled(32, 32, f32::INFINITY);
        let mut sparse_be = SparseTiledBackend::new();
        let got = sparse_be
            .mmo_pruned(OpKind::MinPlus, &adj, &adj, &c)
            .unwrap();
        let want = simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &adj, &c).unwrap();
        assert_eq!(got, want);
        assert_eq!(sparse_be.sparse_count().pruned_values, 0);
    }

    #[test]
    fn pruned_result_is_a_relaxation_for_min_plus() {
        // Dropping edges can only lengthen (or disconnect) shortest
        // paths — never shorten them.
        let g = gen::connected_gnp_graph(24, 0.4, 1.0, 9.0, 7);
        let adj = g.adjacency(OpKind::MinPlus);
        let c = Matrix::filled(24, 24, f32::INFINITY);
        let dense = simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &adj, &c).unwrap();
        let sparse = SparseTiledBackend::new()
            .mmo_pruned(OpKind::MinPlus, &adj, &adj, &c)
            .unwrap();
        for (d, s) in dense.as_slice().iter().zip(sparse.as_slice()) {
            assert!(s >= d, "pruning shortened a path: {s} < {d}");
        }
    }

    #[test]
    fn quality_metric_bounds() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let same = pruning_quality(&a, &a.clone());
        assert_eq!(same.exact_match_fraction, 1.0);
        assert_eq!(same.max_finite_deviation, 0.0);
        let b = Matrix::from_rows(&[&[1.0, 2.5]]);
        let q = pruning_quality(&a, &b);
        assert_eq!(q.exact_match_fraction, 0.5);
        assert_eq!(q.max_finite_deviation, 0.5);
        let inf = Matrix::from_rows(&[&[1.0, f32::INFINITY]]);
        assert_eq!(
            pruning_quality(&a, &inf).max_finite_deviation,
            f32::INFINITY
        );
    }

    #[test]
    fn compliant_graph_closure_is_bit_identical_on_the_sparse_pipe() {
        // A graph whose rows are 2:4-compliant by construction (diagonal
        // plus edges to v+1 and v+17: at most two entries per aligned
        // group) passes through pruning untouched, so the sparse pipe's
        // closure is bit-identical to the dense one — the regime the
        // paper's "inputs are pre-processed" assumption targets.
        let n = 48;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, 1.0 + (v % 7) as f32);
            g.add_edge(v, (v + 17) % n, 2.0 + (v % 5) as f32);
        }
        let adj = g.adjacency(OpKind::MinPlus);
        assert!(crate::structured::is_2_4_compliant(&adj, f32::INFINITY));
        let run = |sparse: bool| {
            let mut dist = adj.clone();
            for _ in 0..n {
                let next = if sparse {
                    SparseTiledBackend::new()
                        .mmo_pruned(OpKind::MinPlus, &adj, &dist, &dist)
                        .unwrap()
                } else {
                    simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &dist, &dist).unwrap()
                };
                if next == dist {
                    break;
                }
                dist = next;
            }
            dist
        };
        let dense = run(false);
        let sparse = run(true);
        let q = pruning_quality(&dense, &sparse);
        assert_eq!(q.exact_match_fraction, 1.0);
        assert_eq!(q.max_finite_deviation, 0.0);
    }

    #[test]
    fn noncompliant_graph_closure_quality_is_measured_honestly() {
        // On a denser graph, 2:4 pruning drops real edges; distances can
        // only grow, and the quality metric reports how many pairs moved.
        let g = {
            let mut g = Graph::new(48);
            let base = gen::gnp_graph(48, 4.0 / 48.0, 2.0, 9.0, 11);
            for (s, d, w) in base.edges() {
                g.add_edge(s, d, w);
            }
            for v in 0..48 {
                g.add_edge(v, (v + 1) % 48, 1.0);
            }
            g
        };
        let adj = g.adjacency(OpKind::MinPlus);
        let run = |sparse: bool| {
            let mut dist = adj.clone();
            for _ in 0..48 {
                let next = if sparse {
                    SparseTiledBackend::new()
                        .mmo_pruned(OpKind::MinPlus, &adj, &dist, &dist)
                        .unwrap()
                } else {
                    simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &dist, &dist).unwrap()
                };
                if next == dist {
                    break;
                }
                dist = next;
            }
            dist
        };
        let dense = run(false);
        let sparse = run(true);
        let q = pruning_quality(&dense, &sparse);
        // The backbone (smallest weights) survives pruning, so everything
        // stays reachable; a meaningful fraction of distances still agree
        // and none improved.
        assert!(q.exact_match_fraction > 0.4, "{}", q.exact_match_fraction);
        assert!(q.max_finite_deviation.is_finite(), "no pair disconnected");
        // Distances never improve beyond fp16 operand-requantisation
        // noise (the sparse path quantises `dist` each iteration).
        for (d, sp) in dense.as_slice().iter().zip(sparse.as_slice()) {
            assert!(*sp >= d - 0.05 * d.abs(), "{sp} < {d}");
        }
    }
}
