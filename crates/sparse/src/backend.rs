//! Functional sparse-SIMD²-unit backend.
//!
//! The Fig 13 experiment runs SIMD² applications on the *sparse* tile
//! pipe: the `A` operand is pre-pruned to 2:4 structure and stored
//! compressed, and the unit skips the pruned lanes (2× throughput). This
//! backend provides the functional half of that experiment: `A` passes
//! through [`prune_2_4`]/[`Compressed24`] before every operation, so the
//! *numerical consequences* of structured pruning — which the paper
//! sidesteps by assuming pre-processed inputs — can be measured.

use simd2_matrix::{Matrix, ShapeError};
use simd2_mxu::Simd2Unit;
use simd2_semiring::OpKind;

use crate::structured::{prune_2_4, Compressed24};

/// Work counters of the sparse backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparseOpCount {
    /// Whole-matrix operations executed.
    pub matrix_mmos: u64,
    /// 16×16 tile operations executed on the sparse pipe.
    pub tile_mmos: u64,
    /// Operand values discarded by 2:4 pruning across all operations.
    pub pruned_values: u64,
}

/// A whole-matrix engine that compresses the `A` operand to 2:4 structure
/// before computing — the functional model of a sparse SIMD² unit.
///
/// # Example
///
/// ```
/// use simd2_matrix::Matrix;
/// use simd2_semiring::OpKind;
/// use simd2_sparse::backend::SparseTiledBackend;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]); // violates 2:4
/// let b = Matrix::filled(4, 1, 1.0);
/// let c = Matrix::zeros(1, 1);
/// let mut be = SparseTiledBackend::new();
/// let d = be.mmo(OpKind::PlusMul, &a, &b, &c)?;
/// // Magnitude pruning kept 3 and 4 only: 3·1 + 4·1.
/// assert_eq!(d[(0, 0)], 7.0);
/// assert_eq!(be.op_count().pruned_values, 2);
/// # Ok::<(), simd2_matrix::ShapeError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseTiledBackend {
    unit: Simd2Unit,
    count: SparseOpCount,
}

impl SparseTiledBackend {
    /// Creates the backend with the default fp16-input unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Work counters accumulated so far.
    pub fn op_count(&self) -> SparseOpCount {
        self.count
    }

    /// Executes `D = C ⊕ (A|₂:₄ ⊗ B)`: `A` is pruned to 2:4 structure
    /// (round-tripped through the compressed format, as the hardware
    /// would consume it), then the tiled unit computes as usual.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when operand shapes are incompatible.
    pub fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, ShapeError> {
        simd2_matrix::reference::check_mmo_shapes(a, b, c)?;
        let zero = op.no_edge_f32().unwrap_or(0.0);
        let pruned = prune_2_4(a, op);
        let nnz_before = a.as_slice().iter().filter(|&&x| x != zero).count();
        let compressed =
            Compressed24::compress(&pruned, zero).expect("prune_2_4 output is always compliant");
        self.count.pruned_values += (nnz_before - compressed.nnz()) as u64;

        // Tiled execution on the decompressed operand; the sparse pipe
        // computes the same values in half the cycles.
        let a_sparse = compressed.decompress();
        let grid = simd2_matrix::tiling::TileGrid::new(
            a.rows(),
            b.cols(),
            a.cols(),
            simd2_matrix::ISA_TILE,
        );
        let mut d = Matrix::zeros(a.rows(), b.cols());
        for (ti, tj) in grid.output_coords() {
            let mut acc =
                simd2_matrix::tiling::load_c_tile::<{ simd2_matrix::ISA_TILE }>(op, c, ti, tj);
            for tk in 0..grid.k_tiles {
                let at = simd2_matrix::tiling::load_a_tile::<{ simd2_matrix::ISA_TILE }>(
                    op, &a_sparse, ti, tk,
                );
                let bt =
                    simd2_matrix::tiling::load_b_tile::<{ simd2_matrix::ISA_TILE }>(op, b, tk, tj);
                acc = self.unit.execute(op, &at, &bt, &acc);
                self.count.tile_mmos += 1;
            }
            simd2_matrix::tiling::store_d_tile(&mut d, &acc, ti, tj);
        }
        self.count.matrix_mmos += 1;
        Ok(d)
    }
}

/// Quality of a sparse-pipe closure versus the dense solution: fraction
/// of entries that still agree exactly, and the worst deviation on the
/// finite entries — the §6.5 trade the paper leaves to pre-processing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruningQuality {
    /// Fraction of matching entries (exact, including infinities).
    pub exact_match_fraction: f64,
    /// Worst absolute deviation over entries finite in both.
    pub max_finite_deviation: f32,
}

/// Compares a sparse-pipe result against the dense oracle.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn pruning_quality(dense: &Matrix, sparse: &Matrix) -> PruningQuality {
    assert_eq!(dense.shape(), sparse.shape());
    let mut matches = 0usize;
    let mut worst = 0.0f32;
    for (a, b) in dense.as_slice().iter().zip(sparse.as_slice()) {
        if a == b {
            matches += 1;
        } else if a.is_finite() && b.is_finite() {
            worst = worst.max((a - b).abs());
        } else {
            worst = f32::INFINITY;
        }
    }
    PruningQuality {
        exact_match_fraction: matches as f64 / dense.len() as f64,
        max_finite_deviation: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::gen;
    use simd2_matrix::Graph;

    #[test]
    fn dense_compliant_inputs_pass_through_unchanged() {
        // A graph sparse enough to satisfy 2:4 naturally loses nothing.
        let g = gen::gnp_graph(32, 0.03, 1.0, 9.0, 3);
        let adj = g.adjacency(OpKind::MinPlus);
        if !crate::structured::is_2_4_compliant(&adj, f32::INFINITY) {
            return; // rare seed; the property is covered below anyway
        }
        let c = Matrix::filled(32, 32, f32::INFINITY);
        let mut sparse_be = SparseTiledBackend::new();
        let got = sparse_be.mmo(OpKind::MinPlus, &adj, &adj, &c).unwrap();
        let want = simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &adj, &c).unwrap();
        assert_eq!(got, want);
        assert_eq!(sparse_be.op_count().pruned_values, 0);
    }

    #[test]
    fn pruning_count_is_reported() {
        let a = Matrix::filled(4, 8, 1.0); // every group violates 2:4
        let b = Matrix::filled(8, 4, 1.0);
        let c = Matrix::zeros(4, 4);
        let mut be = SparseTiledBackend::new();
        be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        // 4 rows × 2 groups × 2 pruned each.
        assert_eq!(be.op_count().pruned_values, 16);
        assert_eq!(be.op_count().matrix_mmos, 1);
        assert!(be.op_count().tile_mmos > 0);
    }

    #[test]
    fn pruned_result_is_a_relaxation_for_min_plus() {
        // Dropping edges can only lengthen (or disconnect) shortest
        // paths — never shorten them.
        let g = gen::connected_gnp_graph(24, 0.4, 1.0, 9.0, 7);
        let adj = g.adjacency(OpKind::MinPlus);
        let c = Matrix::filled(24, 24, f32::INFINITY);
        let dense = simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &adj, &c).unwrap();
        let sparse = SparseTiledBackend::new()
            .mmo(OpKind::MinPlus, &adj, &adj, &c)
            .unwrap();
        for (d, s) in dense.as_slice().iter().zip(sparse.as_slice()) {
            assert!(s >= d, "pruning shortened a path: {s} < {d}");
        }
    }

    #[test]
    fn quality_metric_bounds() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let same = pruning_quality(&a, &a.clone());
        assert_eq!(same.exact_match_fraction, 1.0);
        assert_eq!(same.max_finite_deviation, 0.0);
        let b = Matrix::from_rows(&[&[1.0, 2.5]]);
        let q = pruning_quality(&a, &b);
        assert_eq!(q.exact_match_fraction, 0.5);
        assert_eq!(q.max_finite_deviation, 0.5);
        let inf = Matrix::from_rows(&[&[1.0, f32::INFINITY]]);
        assert_eq!(
            pruning_quality(&a, &inf).max_finite_deviation,
            f32::INFINITY
        );
    }

    #[test]
    fn compliant_graph_closure_is_bit_identical_on_the_sparse_pipe() {
        // A graph whose rows are 2:4-compliant by construction (diagonal
        // plus edges to v+1 and v+17: at most two entries per aligned
        // group) passes through pruning untouched, so the sparse pipe's
        // closure is bit-identical to the dense one — the regime the
        // paper's "inputs are pre-processed" assumption targets.
        let n = 48;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, 1.0 + (v % 7) as f32);
            g.add_edge(v, (v + 17) % n, 2.0 + (v % 5) as f32);
        }
        let adj = g.adjacency(OpKind::MinPlus);
        assert!(crate::structured::is_2_4_compliant(&adj, f32::INFINITY));
        let run = |sparse: bool| {
            let mut dist = adj.clone();
            for _ in 0..n {
                let next = if sparse {
                    SparseTiledBackend::new()
                        .mmo(OpKind::MinPlus, &adj, &dist, &dist)
                        .unwrap()
                } else {
                    simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &dist, &dist).unwrap()
                };
                if next == dist {
                    break;
                }
                dist = next;
            }
            dist
        };
        let dense = run(false);
        let sparse = run(true);
        let q = pruning_quality(&dense, &sparse);
        assert_eq!(q.exact_match_fraction, 1.0);
        assert_eq!(q.max_finite_deviation, 0.0);
    }

    #[test]
    fn noncompliant_graph_closure_quality_is_measured_honestly() {
        // On a denser graph, 2:4 pruning drops real edges; distances can
        // only grow, and the quality metric reports how many pairs moved.
        let g = {
            let mut g = Graph::new(48);
            let base = gen::gnp_graph(48, 4.0 / 48.0, 2.0, 9.0, 11);
            for (s, d, w) in base.edges() {
                g.add_edge(s, d, w);
            }
            for v in 0..48 {
                g.add_edge(v, (v + 1) % 48, 1.0);
            }
            g
        };
        let adj = g.adjacency(OpKind::MinPlus);
        let run = |sparse: bool| {
            let mut dist = adj.clone();
            for _ in 0..48 {
                let next = if sparse {
                    SparseTiledBackend::new()
                        .mmo(OpKind::MinPlus, &adj, &dist, &dist)
                        .unwrap()
                } else {
                    simd2_matrix::reference::mmo(OpKind::MinPlus, &adj, &dist, &dist).unwrap()
                };
                if next == dist {
                    break;
                }
                dist = next;
            }
            dist
        };
        let dense = run(false);
        let sparse = run(true);
        let q = pruning_quality(&dense, &sparse);
        // The backbone (smallest weights) survives pruning, so everything
        // stays reachable; a meaningful fraction of distances still agree
        // and none improved.
        assert!(q.exact_match_fraction > 0.4, "{}", q.exact_match_fraction);
        assert!(q.max_finite_deviation.is_finite(), "no pair disconnected");
        // Distances never improve beyond fp16 operand-requantisation
        // noise (the sparse path quantises `dist` each iteration).
        for (d, sp) in dense.as_slice().iter().zip(sparse.as_slice()) {
            assert!(*sp >= d - 0.05 * d.abs(), "{sp} < {d}");
        }
    }
}
