//! 2:4 structured sparsity (the sparse Tensor-Core format of Fig 13).
//!
//! Ampere's sparse tensor pipe requires at most 2 non-zero values in every
//! group of 4 consecutive elements along the reduction dimension; the
//! hardware then skips the zero lanes for 2× throughput. The paper's
//! sparse-SIMD² experiment "assume\[s\] the inputs are pre-processed and
//! stored in the format required by the sparse Tensor Core" — this module
//! is that pre-processing.

use simd2_matrix::Matrix;
use simd2_semiring::OpKind;

/// Checks the 2:4 constraint along rows: at most 2 entries per aligned
/// group of 4 differ from `zero` (the algebra's no-edge value).
pub fn is_2_4_compliant(m: &Matrix, zero: f32) -> bool {
    for r in 0..m.rows() {
        for group in m.row(r).chunks(4) {
            if group.iter().filter(|&&x| x != zero).count() > 2 {
                return false;
            }
        }
    }
    true
}

/// Prunes a matrix to 2:4 structure: in each aligned group of 4 along the
/// row, the 2 entries whose magnitude ranks lowest (distance from `zero`,
/// where `zero` may be `±∞` for path algebras) are replaced by `zero`.
///
/// For plus-mul this is the usual magnitude pruning; for a min-plus
/// adjacency it keeps the two *shortest* edges per group (the entries most
/// likely to matter), mirroring how one would sparsify a graph for the
/// sparse pipe.
pub fn prune_2_4(m: &Matrix, op: OpKind) -> Matrix {
    let zero = op.no_edge_f32().unwrap_or(0.0);
    let mut out = m.clone();
    for r in 0..m.rows() {
        let row = out.row_mut(r);
        for group in row.chunks_mut(4) {
            // Rank by "importance": how strongly the entry can influence a
            // reduction, i.e. distance from the annihilating value.
            let mut order: Vec<usize> = (0..group.len()).collect();
            let importance = |x: f32| -> f32 {
                if x == zero {
                    return f32::NEG_INFINITY;
                }
                if zero.is_infinite() {
                    // Path algebras: closer to 0 beats closer to ±∞.
                    -x.abs()
                } else {
                    x.abs()
                }
            };
            order.sort_by(|&a, &b| {
                importance(group[b])
                    .partial_cmp(&importance(group[a]))
                    .unwrap()
            });
            for &i in order.iter().skip(2) {
                group[i] = zero;
            }
        }
    }
    out
}

/// Fraction of entries pruned away by [`prune_2_4`] relative to the
/// original non-`zero` population.
pub fn pruning_loss(original: &Matrix, pruned: &Matrix, zero: f32) -> f64 {
    let nnz_before = original.as_slice().iter().filter(|&&x| x != zero).count();
    let nnz_after = pruned.as_slice().iter().filter(|&&x| x != zero).count();
    if nnz_before == 0 {
        0.0
    } else {
        1.0 - nnz_after as f64 / nnz_before as f64
    }
}

/// Compressed device size of a 2:4 operand: half the values (fp16) plus
/// 2-bit metadata per kept value — the memory-side benefit of the format.
pub fn compressed_bytes(rows: usize, cols: usize) -> u64 {
    let kept = (rows * cols) as u64 / 2;
    kept * 2 + kept / 4 // fp16 payload + 2-bit indices
}

/// A matrix in the 2:4 compressed operand format: per aligned group of 4
/// elements along each row, at most 2 values are stored together with
/// their 2-bit in-group positions — exactly the layout the sparse tensor
/// pipe consumes, which is how it skips the zero lanes for 2× throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct Compressed24 {
    rows: usize,
    cols: usize,
    zero: f32,
    /// Two slots per group; absent values hold `zero` with index 0xFF.
    values: Vec<f32>,
    indices: Vec<u8>,
}

impl Compressed24 {
    /// Compresses a 2:4-compliant matrix.
    ///
    /// # Errors
    ///
    /// Returns the offending `(row, group)` coordinate if any group of 4
    /// holds more than two non-`zero` values.
    pub fn compress(m: &Matrix, zero: f32) -> Result<Self, (usize, usize)> {
        let groups_per_row = m.cols().div_ceil(4);
        let mut values = Vec::with_capacity(m.rows() * groups_per_row * 2);
        let mut indices = Vec::with_capacity(values.capacity());
        for r in 0..m.rows() {
            for (gi, group) in m.row(r).chunks(4).enumerate() {
                let mut slots = 0usize;
                for (i, &v) in group.iter().enumerate() {
                    if v != zero {
                        if slots == 2 {
                            return Err((r, gi));
                        }
                        values.push(v);
                        indices.push(i as u8);
                        slots += 1;
                    }
                }
                for _ in slots..2 {
                    values.push(zero);
                    indices.push(0xFF);
                }
            }
        }
        Ok(Self {
            rows: m.rows(),
            cols: m.cols(),
            zero,
            values,
            indices,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the decompressed matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (kept) non-`zero` values.
    pub fn nnz(&self) -> usize {
        self.indices.iter().filter(|&&i| i != 0xFF).count()
    }

    /// Expands back to the dense form.
    pub fn decompress(&self) -> Matrix {
        let mut m = Matrix::filled(self.rows, self.cols, self.zero);
        let groups_per_row = self.cols.div_ceil(4);
        for r in 0..self.rows {
            for g in 0..groups_per_row {
                let base = (r * groups_per_row + g) * 2;
                for s in 0..2 {
                    let idx = self.indices[base + s];
                    if idx != 0xFF {
                        let c = g * 4 + idx as usize;
                        m[(r, c)] = self.values[base + s];
                    }
                }
            }
        }
        m
    }

    /// Stored `(k, value)` pairs of row `r`, in ascending-`k` order —
    /// the exact traversal the sparse tile pipe performs when it skips
    /// the pruned lanes. Within each group the two slots were filled in
    /// element order, so chaining the groups yields a sorted walk.
    pub fn row_slots(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let groups_per_row = self.cols.div_ceil(4);
        (0..groups_per_row).flat_map(move |g| {
            let base = (r * groups_per_row + g) * 2;
            (0..2).filter_map(move |s| {
                let idx = self.indices[base + s];
                (idx != 0xFF).then(|| (g * 4 + idx as usize, self.values[base + s]))
            })
        })
    }

    /// Device bytes of the compressed image (fp16 values + 2-bit indices,
    /// rounded up per group).
    pub fn device_bytes(&self) -> u64 {
        (self.values.len() * 2) as u64 + (self.indices.len() as u64).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::gen;

    #[test]
    fn pruned_matrices_are_compliant() {
        for op in [OpKind::PlusMul, OpKind::MinPlus, OpKind::MaxMin] {
            let zero = op.no_edge_f32().unwrap();
            let m = gen::random_matrix(16, 32, 0.5, 9.5, 3);
            assert!(
                !is_2_4_compliant(&m, zero),
                "{op}: dense input starts non-compliant"
            );
            let p = prune_2_4(&m, op);
            assert!(is_2_4_compliant(&p, zero), "{op}");
        }
    }

    #[test]
    fn already_sparse_groups_are_untouched() {
        let mut m = Matrix::zeros(1, 8);
        m[(0, 1)] = 5.0;
        m[(0, 6)] = -2.0;
        let p = prune_2_4(&m, OpKind::PlusMul);
        assert_eq!(p, m);
        assert_eq!(pruning_loss(&m, &p, 0.0), 0.0);
    }

    #[test]
    fn plus_mul_keeps_largest_magnitudes() {
        let m = Matrix::from_rows(&[&[1.0, -8.0, 3.0, 0.5]]);
        let p = prune_2_4(&m, OpKind::PlusMul);
        assert_eq!(p, Matrix::from_rows(&[&[0.0, -8.0, 3.0, 0.0]]));
    }

    #[test]
    fn min_plus_keeps_shortest_edges() {
        let inf = f32::INFINITY;
        let m = Matrix::from_rows(&[&[4.0, 1.0, 9.0, 2.0]]);
        let p = prune_2_4(&m, OpKind::MinPlus);
        assert_eq!(p, Matrix::from_rows(&[&[inf, 1.0, inf, 2.0]]));
    }

    #[test]
    fn loss_measures_half_of_dense() {
        let m = gen::random_matrix(32, 32, 0.5, 1.5, 7);
        let p = prune_2_4(&m, OpKind::PlusMul);
        let loss = pruning_loss(&m, &p, 0.0);
        assert!((loss - 0.5).abs() < 1e-6, "{loss}");
    }

    #[test]
    fn ragged_tail_groups_handled() {
        // 6 columns: one full group of 4 plus a tail of 2 (tail keeps ≤2).
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let p = prune_2_4(&m, OpKind::PlusMul);
        assert!(is_2_4_compliant(&p, 0.0));
        assert_eq!(p[(0, 4)], 5.0);
        assert_eq!(p[(0, 5)], 6.0);
    }

    #[test]
    fn compress_roundtrips_pruned_matrices() {
        for op in [OpKind::PlusMul, OpKind::MinPlus] {
            let zero = op.no_edge_f32().unwrap();
            let m = prune_2_4(&gen::random_matrix(12, 20, 0.5, 9.5, 11), op);
            let c = Compressed24::compress(&m, zero).unwrap();
            assert_eq!(c.decompress(), m, "{op}");
            assert_eq!(c.rows(), 12);
            assert_eq!(c.cols(), 20);
            // At most half the entries survive pruning.
            assert!(c.nnz() <= 12 * 20 / 2);
        }
    }

    #[test]
    fn row_slots_walk_in_ascending_k_order() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 4.0, 0.0, 6.0], &[0.0; 6]]);
        let c = Compressed24::compress(&m, 0.0).unwrap();
        assert_eq!(
            c.row_slots(0).collect::<Vec<_>>(),
            vec![(0, 1.0), (3, 4.0), (5, 6.0)]
        );
        assert_eq!(c.row_slots(1).count(), 0);
    }

    #[test]
    fn compress_rejects_dense_groups() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(Compressed24::compress(&m, 0.0), Err((0, 0)));
        // Second row, second group.
        let mut m = Matrix::zeros(2, 8);
        for c in 4..8 {
            m[(1, c)] = 1.0;
        }
        assert_eq!(Compressed24::compress(&m, 0.0), Err((1, 1)));
    }

    #[test]
    fn compressed_operand_computes_identically_to_pruned_dense() {
        // The sparse pipe's contract: compute on the compressed operand
        // equals compute on the pruned dense operand.
        use simd2_matrix::reference;
        let op = OpKind::MinPlus;
        let zero = op.no_edge_f32().unwrap();
        let a = prune_2_4(&gen::random_matrix(16, 16, 1.0, 9.0, 3), op);
        let b = gen::random_matrix(16, 16, 1.0, 9.0, 4);
        let cacc = Matrix::filled(16, 16, f32::INFINITY);
        let compressed = Compressed24::compress(&a, zero).unwrap();
        let via_compressed = reference::mmo(op, &compressed.decompress(), &b, &cacc).unwrap();
        let via_dense = reference::mmo(op, &a, &b, &cacc).unwrap();
        assert_eq!(via_compressed, via_dense);
    }

    #[test]
    fn compressed_image_is_smaller_than_dense_fp16() {
        let m = prune_2_4(&gen::random_matrix(64, 64, 0.5, 9.5, 7), OpKind::PlusMul);
        let c = Compressed24::compress(&m, 0.0).unwrap();
        let dense_fp16 = (64 * 64 * 2) as u64;
        assert!(
            c.device_bytes() < dense_fp16,
            "{} vs {dense_fp16}",
            c.device_bytes()
        );
        assert_eq!(c.device_bytes(), compressed_bytes(64, 64));
    }

    #[test]
    fn ragged_columns_compress_too() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0, 5.0, 6.0]]);
        let c = Compressed24::compress(&m, 0.0).unwrap();
        assert_eq!(c.decompress(), m);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn compressed_size_is_quarter_of_fp32_dense() {
        let dense_fp32 = 1024u64 * 1024 * 4;
        let c = compressed_bytes(1024, 1024);
        assert!(c * 4 < dense_fp32 * 2, "{c}");
        assert_eq!(c, 1024 * 1024 / 2 * 2 + 1024 * 1024 / 8);
    }
}
