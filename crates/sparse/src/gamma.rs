//! SIMD²-extended GAMMA sparse accelerator (paper §6.5, future work).
//!
//! "A GAMMA PE uses \[an\] FP64 multiplier and adder, and an SIMD² GAMMA PE
//! will use two FP64 ALUs, one support\[ing\] the ⊗ op, and the other
//! support\[ing\] the ⊕ op. … in GAMMA, only 10% of the total area is due
//! to the FP64 MAC unit," so extending a *sparse* accelerator with SIMD²
//! costs proportionally less than extending a dense one.
//!
//! The functional behaviour of such an accelerator is exactly
//! [`crate::Csr::spgemm`] under a chosen algebra; this module adds the
//! area estimate and a convenience wrapper for running closure iterations
//! on sparse adjacency matrices (e.g. APSP on sparse graphs).

use simd2_matrix::Matrix;
use simd2_mxu::AreaModel;
use simd2_semiring::{OpKind, EXTENDED_OPS};

use crate::Csr;

/// Fraction of a GAMMA PE's area occupied by its FP64 MAC unit.
pub const GAMMA_MAC_AREA_FRACTION: f64 = 0.10;

/// Relative area of a SIMD²-extended GAMMA PE over the baseline GAMMA PE.
///
/// Only the MAC unit grows (by the same combined-unit overhead the dense
/// SIMD² unit pays at 64-bit precision); the dominant sparse-traversal
/// machinery (fibertree walkers, merge networks, buffers) is untouched.
pub fn simd2_gamma_pe_area() -> f64 {
    let mac_overhead =
        AreaModel::full_simd2_at_precision(simd2_semiring::precision::Precision::Bits64)
            / AreaModel::mma_at_precision(simd2_semiring::precision::Precision::Bits64)
            - 1.0;
    1.0 + GAMMA_MAC_AREA_FRACTION * mac_overhead
}

/// Runs a sparse Bellman-Ford closure (`D ← D ⊕ (D ⊗ A)`) entirely in
/// CSR form — what an SIMD² GAMMA accelerator would execute for APSP on
/// extremely sparse graphs.
///
/// Returns the dense closure (for comparison against dense solvers) and
/// the number of spGEMM iterations executed.
///
/// # Panics
///
/// Panics if `adj` is not square or `op` is not a closure algebra.
pub fn sparse_closure(op: OpKind, adj: &Matrix, max_iters: usize) -> (Matrix, usize) {
    assert!(op.is_closure_algebra(), "{op} has no fixed-point closure");
    assert!(adj.is_square());
    let zero = op.no_edge_f32().expect("closure algebra");
    let a = Csr::from_dense(adj, zero).expect("no-edge sentinels are never NaN");
    let mut dist = a.clone();
    let mut iters = 0;
    for _ in 0..max_iters {
        let ext = dist.spgemm(op, &a);
        // D ⊕ ext, element-wise union in sparse form via a dense pass —
        // the accelerator would use a merge network here.
        let merged = {
            let d_dense = dist.to_dense(zero);
            let e_dense = ext.to_dense(zero);
            let out = Matrix::from_fn(d_dense.rows(), d_dense.cols(), |r, c| {
                op.reduce_f32(d_dense[(r, c)], e_dense[(r, c)])
            });
            Csr::from_dense(&out, zero).expect("no-edge sentinels are never NaN")
        };
        iters += 1;
        if merged == dist {
            break;
        }
        dist = merged;
    }
    (dist.to_dense(zero), iters)
}

/// The eight extension ops, exposed for sparse-accelerator sweeps.
pub fn supported_ops() -> [OpKind; 8] {
    EXTENDED_OPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::gen;

    #[test]
    fn gamma_extension_is_cheap() {
        let area = simd2_gamma_pe_area();
        // ~5% total-PE overhead: 10% of the PE × ~52% MAC growth at FP64.
        assert!(area > 1.0 && area < 1.07, "{area}");
    }

    #[test]
    fn sparse_closure_matches_dense_floyd_warshall() {
        let g = gen::connected_gnp_graph(18, 0.12, 1.0, 9.0, 21);
        let adj = g.adjacency(OpKind::MinPlus);
        let (sparse, iters) = sparse_closure(OpKind::MinPlus, &adj, 64);
        // Dense oracle.
        let mut want = adj.clone();
        for k in 0..18 {
            for i in 0..18 {
                for j in 0..18 {
                    let cand = want[(i, k)] + want[(k, j)];
                    if cand < want[(i, j)] {
                        want[(i, j)] = cand;
                    }
                }
            }
        }
        assert_eq!(sparse, want);
        assert!(iters <= 20);
    }

    #[test]
    fn sparse_closure_or_and_reachability() {
        let g = gen::gnp_graph(14, 0.15, 1.0, 2.0, 5);
        let (closure, _) = sparse_closure(OpKind::OrAnd, &g.reachability(), 32);
        // Reachability is reflexive and includes all direct edges.
        for v in 0..14 {
            assert_eq!(closure[(v, v)], 1.0);
        }
        for (s, d, _) in g.edges() {
            assert_eq!(closure[(s, d)], 1.0);
        }
    }

    #[test]
    fn supported_ops_are_the_extensions() {
        assert_eq!(supported_ops().len(), 8);
        assert!(!supported_ops().contains(&OpKind::PlusMul));
    }
}
