//! Sparse-vs-dense cost models for the Figure 14 crossover study.
//!
//! Figure 14 compares NVIDIA's `spGEMM` (cuSPARSE, CSR inputs) against the
//! dense Tensor-Core `gemmEx` (cuBLAS) across input sparsities and sizes.
//! The published findings this model is calibrated to:
//!
//! * at 1024², cuSPARSE never outperforms cuBLAS (fixed analysis/format
//!   overheads dominate),
//! * at 4096², cuSPARSE wins only beyond ~99% sparsity,
//! * larger and sparser inputs win by growing factors,
//! * at 16384² with sparsity below ~90%, spGEMM exhausts the 10 GB device
//!   memory (compressed formats backfire on relatively dense data), while
//!   the dense path still fits a 32768² multiplication.

use serde::{Deserialize, Serialize};
use simd2_gpu::{Gpu, Seconds};
use simd2_semiring::OpKind;

/// Expected density of the spGEMM output `C = A·B` for uniformly random
/// `n × n` operands of density `d`: `1 − (1 − d²)ⁿ`.
pub fn output_density(n: usize, d: f64) -> f64 {
    1.0 - (1.0 - d * d).powi(n as i32)
}

/// CSR device bytes for an `n × n` operand of density `d` (fp32 values +
/// 32-bit column indices + row pointers).
pub fn csr_bytes(n: usize, d: f64) -> f64 {
    let nnz = (n * n) as f64 * d;
    nnz * 8.0 + (n as f64 + 1.0) * 4.0
}

/// Peak device memory of a cuSPARSE-style spGEMM `C = A·B`:
/// both CSR operands, the CSR output with a 2× construction workspace,
/// and the expansion buffer of the row-products phase — 8 bytes per
/// intermediate product amortised over 128-way chunking. The expansion
/// term is what blows up on relatively dense large inputs.
pub fn spgemm_peak_bytes(n: usize, d: f64) -> f64 {
    let dc = output_density(n, d);
    let products = (n as f64).powi(3) * d * d;
    csr_bytes(n, d) * 2.0 + csr_bytes(n, dc) * 3.0 + products * 8.0 / 128.0
}

/// Modelled cuSPARSE spGEMM wall time: fixed analysis/setup passes, a
/// per-stored-entry traversal cost (irregular, index-chasing), and the
/// multiply-accumulate work itself at low sustained efficiency.
pub fn spgemm_time(gpu: &Gpu, n: usize, d: f64) -> Seconds {
    let dc = output_density(n, d);
    let nnz_total = (n * n) as f64 * (2.0 * d + dc);
    let products = (n as f64).powi(3) * d * d;
    let fixed = 5.0e-4; // format analysis + size estimation passes
    let traversal = nnz_total * 0.3e-9;
    let compute = products * 2.0 / (gpu.config().cuda_ops_per_second() * 0.10);
    Seconds(fixed + traversal + compute)
}

/// Dense Tensor-Core GEMM (`gemmEx`) time for the same problem.
pub fn dense_gemm_time(gpu: &Gpu, n: usize) -> Seconds {
    gpu.simd2_mmo_time(OpKind::PlusMul, n, n, n)
}

/// Device bytes of the dense path: three fp32 matrices (A, B, C).
pub fn dense_bytes(n: usize) -> f64 {
    3.0 * (n * n) as f64 * 4.0
}

/// One point of the Figure 14 sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Matrix side length.
    pub n: usize,
    /// Input sparsity (fraction of zeros).
    pub sparsity: f64,
    /// spGEMM time, seconds — `None` when the run OOMs.
    pub spgemm_seconds: Option<f64>,
    /// Dense Tensor-Core GEMM time, seconds.
    pub dense_seconds: f64,
}

impl CrossoverPoint {
    /// Speedup of spGEMM over the dense path (`None` on OOM).
    pub fn speedup(&self) -> Option<f64> {
        self.spgemm_seconds.map(|s| self.dense_seconds / s)
    }
}

/// Evaluates one `(n, sparsity)` point of the Fig 14 sweep.
pub fn crossover_point(gpu: &Gpu, n: usize, sparsity: f64) -> CrossoverPoint {
    let d = 1.0 - sparsity;
    let dense_seconds = dense_gemm_time(gpu, n).get();
    let spgemm_seconds = if gpu.config().fits_in_memory(spgemm_peak_bytes(n, d) as u64) {
        Some(spgemm_time(gpu, n, d).get())
    } else {
        None
    };
    CrossoverPoint {
        n,
        sparsity,
        spgemm_seconds,
        dense_seconds,
    }
}

/// The sparsity grid of Figure 14.
pub fn fig14_sparsities() -> Vec<f64> {
    vec![0.50, 0.80, 0.90, 0.95, 0.99, 0.995, 0.999, 0.9999]
}

/// The matrix sizes of Figure 14.
pub fn fig14_sizes() -> Vec<usize> {
    vec![1024, 4096, 16384]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::default()
    }

    #[test]
    fn output_density_limits() {
        assert_eq!(output_density(1024, 0.0), 0.0);
        assert!(output_density(4096, 0.1) > 0.999, "dense products saturate");
        let light = output_density(4096, 0.0001);
        assert!(light < 0.01, "{light}");
    }

    #[test]
    fn cusparse_never_wins_at_1024() {
        let g = gpu();
        for s in fig14_sparsities() {
            let p = crossover_point(&g, 1024, s);
            let sp = p.speedup().expect("1024 never OOMs");
            assert!(sp < 1.0, "sparsity {s}: speedup {sp}");
        }
    }

    #[test]
    fn crossover_at_4096_sits_near_99_percent() {
        let g = gpu();
        let below = crossover_point(&g, 4096, 0.98).speedup().unwrap();
        assert!(below < 1.0, "98%: {below}");
        let above = crossover_point(&g, 4096, 0.995).speedup().unwrap();
        assert!(above > 1.0, "99.5%: {above}");
    }

    #[test]
    fn speedup_grows_with_sparsity() {
        let g = gpu();
        let mut prev = 0.0;
        for s in [0.99, 0.995, 0.999, 0.9999] {
            let sp = crossover_point(&g, 16384, s).speedup().unwrap();
            assert!(sp > prev, "sparsity {s}: {sp} <= {prev}");
            prev = sp;
        }
        assert!(prev > 10.0, "extremely sparse wins big: {prev}");
    }

    #[test]
    fn oom_wall_below_90_percent_at_16384() {
        let g = gpu();
        for s in [0.50, 0.80] {
            let p = crossover_point(&g, 16384, s);
            assert!(p.spgemm_seconds.is_none(), "sparsity {s} should OOM");
            assert!(p.speedup().is_none());
        }
        // At ≥ 95% it runs again.
        assert!(crossover_point(&g, 16384, 0.95).spgemm_seconds.is_some());
        // Small matrices never OOM even fully dense.
        assert!(crossover_point(&g, 1024, 0.5).spgemm_seconds.is_some());
    }

    #[test]
    fn dense_path_fits_32768() {
        // §6.5: a 10 GB GPU accommodates at least a 32768² dense
        // multiplication (fp16 operands; our conservative fp32 estimate is
        // checked against a 12 GB bound, fp16 inputs against 10 GB).
        let fp16_ab_fp32_c = 2.0 * (32768.0 * 32768.0) * 2.0 + 32768.0 * 32768.0 * 4.0;
        assert!(gpu().config().fits_in_memory(fp16_ab_fp32_c as u64));
    }

    #[test]
    fn compressed_format_backfires_when_dense() {
        // CSR of a 50%-dense matrix is larger than the dense image.
        assert!(csr_bytes(4096, 0.5) > (4096.0 * 4096.0) * 4.0);
        // …but far smaller when extremely sparse.
        assert!(csr_bytes(4096, 0.001) < (4096.0 * 4096.0) * 4.0 * 0.01);
    }

    #[test]
    fn sweep_grids() {
        assert_eq!(fig14_sizes(), vec![1024, 4096, 16384]);
        assert!(fig14_sparsities().windows(2).all(|w| w[0] < w[1]));
    }
}
