//! Compressed-sparse-row matrices and semiring spGEMM.

use std::fmt;

use simd2_matrix::Matrix;
use simd2_semiring::OpKind;

/// A structurally invalid CSR image.
///
/// Returned by the validating constructors ([`Csr::from_raw`],
/// [`Csr::try_from_triplets`]); every variant pinpoints the first
/// offending coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr` must have exactly `rows + 1` entries.
    RowPointerLength {
        /// Expected entry count (`rows + 1`).
        expected: usize,
        /// Actual entry count.
        got: usize,
    },
    /// `row_ptr` must start at zero and never decrease.
    NonMonotonicRowPointer {
        /// First row whose pointer violates monotonicity.
        row: usize,
    },
    /// The final row pointer must equal the stored entry count.
    RowPointerMismatch {
        /// Final row-pointer value.
        row_ptr_end: usize,
        /// Stored entries (`values.len()`).
        nnz: usize,
    },
    /// `col_idx` and `values` must be the same length.
    LengthMismatch {
        /// Column-index count.
        col_idx: usize,
        /// Value count.
        values: usize,
    },
    /// A column index is at or past the column count.
    ColumnOutOfBounds {
        /// Row containing the entry.
        row: usize,
        /// The offending column index.
        col: usize,
        /// The matrix column count.
        cols: usize,
    },
    /// Column indices within a row must be strictly increasing (sorted,
    /// no duplicates).
    UnsortedColumns {
        /// Row containing the violation.
        row: usize,
        /// The column index that is not greater than its predecessor.
        col: usize,
    },
    /// A triplet's coordinates fall outside the matrix.
    CoordinateOutOfRange {
        /// Triplet row.
        row: usize,
        /// Triplet column.
        col: usize,
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// Two triplets share a coordinate.
    DuplicateEntry {
        /// Duplicated row.
        row: usize,
        /// Duplicated column.
        col: usize,
    },
    /// The implicit-value sentinel is NaN, which compares unequal to
    /// every element — [`Csr::from_dense`] would silently store the
    /// whole matrix as "non-zero" entries. (`±∞` sentinels are legal:
    /// path algebras use them as their no-edge value.)
    NanZero,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::RowPointerLength { expected, got } => {
                write!(f, "row_ptr has {got} entries, expected {expected}")
            }
            CsrError::NonMonotonicRowPointer { row } => {
                write!(f, "row_ptr decreases (or does not start at 0) at row {row}")
            }
            CsrError::RowPointerMismatch { row_ptr_end, nnz } => {
                write!(
                    f,
                    "final row pointer {row_ptr_end} does not match {nnz} stored entries"
                )
            }
            CsrError::LengthMismatch { col_idx, values } => {
                write!(f, "{col_idx} column indices but {values} values")
            }
            CsrError::ColumnOutOfBounds { row, col, cols } => {
                write!(
                    f,
                    "column {col} in row {row} is out of bounds for {cols} columns"
                )
            }
            CsrError::UnsortedColumns { row, col } => {
                write!(f, "column {col} in row {row} is not strictly increasing")
            }
            CsrError::CoordinateOutOfRange { row, col, shape } => {
                write!(
                    f,
                    "triplet ({row},{col}) out of range for {}x{}",
                    shape.0, shape.1
                )
            }
            CsrError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row},{col})")
            }
            CsrError::NanZero => {
                write!(f, "NaN is not a usable implicit-zero sentinel")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A compressed-sparse-row matrix of `f32` values.
///
/// The explicit-zero convention follows the algebra in use: "zero" means
/// the `⊗`-annihilating no-edge value of the operation (plain `0.0` for
/// plus-mul), and structurally-missing entries are implicitly that value.
///
/// # Example
///
/// ```
/// use simd2_matrix::Matrix;
/// use simd2_sparse::Csr;
///
/// let d = Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]);
/// let s = Csr::from_dense(&d, 0.0)?;
/// assert_eq!(s.nnz(), 1);
/// assert_eq!(s.to_dense(0.0), d);
/// # Ok::<(), simd2_sparse::CsrError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from a dense one, treating `zero` as the
    /// implicit value. `±∞` sentinels are legal (path algebras encode
    /// no-edge as `±∞`); a NaN sentinel is rejected because `v != NaN`
    /// holds for every element, which would silently build a fully
    /// dense "sparse" image.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::NanZero`] when `zero` is NaN.
    pub fn from_dense(m: &Matrix, zero: f32) -> Result<Self, CsrError> {
        if zero.is_nan() {
            return Err(CsrError::NanZero);
        }
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != zero {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Self {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from explicit triplets `(row, col, value)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates or duplicate entries. Use
    /// [`Csr::try_from_triplets`] to handle malformed input gracefully.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Self {
        Self::try_from_triplets(rows, cols, triplets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds from explicit triplets `(row, col, value)`, rejecting
    /// out-of-range coordinates and duplicate entries with a typed error
    /// instead of panicking.
    pub fn try_from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Result<Self, CsrError> {
        let mut entries: Vec<(usize, usize, f32)> = triplets.into_iter().collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if r >= rows || c >= cols {
                return Err(CsrError::CoordinateOutOfRange {
                    row: r,
                    col: c,
                    shape: (rows, cols),
                });
            }
            if prev == Some((r, c)) {
                return Err(CsrError::DuplicateEntry { row: r, col: c });
            }
            prev = Some((r, c));
            row_ptr[r + 1] += 1;
            col_idx.push(c as u32);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Assembles a CSR matrix from its raw arrays, validating every
    /// structural invariant:
    ///
    /// - `row_ptr` has `rows + 1` entries, starts at 0, is non-decreasing,
    ///   and ends at the stored entry count;
    /// - `col_idx` and `values` are the same length;
    /// - within each row, column indices are strictly increasing (sorted,
    ///   duplicate-free) and below `cols`.
    ///
    /// This is the untrusted-input entry point: a CSR image read from disk
    /// or a device buffer goes through here so that downstream kernels
    /// (`row_entries`, `spgemm`) can index without bounds panics.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, CsrError> {
        if row_ptr.len() != rows + 1 {
            return Err(CsrError::RowPointerLength {
                expected: rows + 1,
                got: row_ptr.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(CsrError::LengthMismatch {
                col_idx: col_idx.len(),
                values: values.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(CsrError::NonMonotonicRowPointer { row: 0 });
        }
        for r in 0..rows {
            if row_ptr[r + 1] < row_ptr[r] {
                return Err(CsrError::NonMonotonicRowPointer { row: r + 1 });
            }
        }
        if row_ptr[rows] != values.len() {
            return Err(CsrError::RowPointerMismatch {
                row_ptr_end: row_ptr[rows],
                nnz: values.len(),
            });
        }
        for r in 0..rows {
            let mut prev: Option<u32> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c as usize >= cols {
                    return Err(CsrError::ColumnOutOfBounds {
                        row: r,
                        col: c as usize,
                        cols,
                    });
                }
                if prev.is_some_and(|p| c <= p) {
                    return Err(CsrError::UnsortedColumns {
                        row: r,
                        col: c as usize,
                    });
                }
                prev = Some(c);
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The raw `(row_ptr, col_idx, values)` arrays, consuming the matrix.
    /// Feeding them back through [`Csr::from_raw`] reconstructs it.
    pub fn into_raw(self) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
        (self.row_ptr, self.col_idx, self.values)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (explicit) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density of stored entries.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// One row's `(column, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Expands back to dense with `zero` as the implicit value.
    pub fn to_dense(&self, zero: f32) -> Matrix {
        let mut m = Matrix::filled(self.rows, self.cols, zero);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Device bytes of the CSR image (fp32 values + 32-bit column indices
    /// + row pointers) — the quantity the Fig 14 memory model sums.
    pub fn device_bytes(&self) -> u64 {
        (self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4) as u64
    }

    /// Gustavson-style sparse × sparse multiplication under the algebra of
    /// `op`: `C(i,j) = ⊕ₖ A(i,k) ⊗ B(k,j)` over structurally present
    /// pairs.
    ///
    /// This is exactly the computation a SIMD²-extended GAMMA accelerator
    /// performs (§6.5): the classic row-wise product with the multiply
    /// and add ALUs replaced by `⊗` and `⊕`.
    ///
    /// Combined values equal to `op`'s no-edge encoding are dropped from
    /// the output (they are the implicit value).
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree or `op` has no no-edge
    /// encoding (plus-norm is not a sparse path algebra).
    pub fn spgemm(&self, op: OpKind, other: &Csr) -> Csr {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let zero = op
            .no_edge_f32()
            .unwrap_or_else(|| panic!("{op} has no sparse zero"));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        row_ptr.push(0);
        // Dense accumulator row (the SPA of Gustavson's algorithm).
        let mut acc = vec![op.reduce_identity_f32(); other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for (k, a_ik) in self.row_entries(i) {
                for (j, b_kj) in other.row_entries(k) {
                    if acc[j] == op.reduce_identity_f32() && !touched.contains(&j) {
                        touched.push(j);
                    }
                    acc[j] = op.fma_f32(acc[j], a_ik, b_kj);
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                if acc[j] != zero && acc[j] != op.reduce_identity_f32() {
                    col_idx.push(j as u32);
                    values.push(acc[j]);
                }
                acc[j] = op.reduce_identity_f32();
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: self.rows,
            cols: other.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Upper bound on the intermediate products a Gustavson pass over
    /// these operands generates (`Σᵢ Σ_{k∈row i} nnz(B row k)`), the
    /// quantity that drives spGEMM workspace.
    pub fn spgemm_products(&self, other: &Csr) -> u64 {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut total = 0u64;
        for i in 0..self.rows {
            for (k, _) in self.row_entries(i) {
                total += (other.row_ptr[k + 1] - other.row_ptr[k]) as u64;
            }
        }
        total
    }

    /// The transposed matrix, rebuilt in CSR form (a CSC view of the
    /// original). Two counting passes: per-column histogram, then a
    /// stable scatter, so each output row's columns stay sorted.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let at = cursor[c];
                col_idx[at] = r as u32;
                values[at] = v;
                cursor[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse matrix × dense vector under the algebra of `op`:
    /// `y(i) = ⊕ₖ A(i,k) ⊗ x(k)`, folded over the stored entries in
    /// ascending-`k` order — one relaxation step of single-source
    /// BFS/SSSP when `x` is a frontier/distance vector. Matches the
    /// dense fold bit for bit on in-domain inputs (skipped terms
    /// combine through the annihilator; max-mul rows with skipped
    /// terms fold the `⊕ 0.0` end correction).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.cols()` or `op` has no no-edge
    /// encoding (plus-norm is not a sparse path algebra).
    pub fn spmv(&self, op: OpKind, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        assert!(op.no_edge_f32().is_some(), "{op} has no sparse zero");
        let mut y = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let mut acc = op.reduce_identity_f32();
            let mut folded = 0usize;
            for (k, v) in self.row_entries(i) {
                acc = op.fma_f32(acc, v, x[k]);
                folded += 1;
            }
            if op == OpKind::MaxMul && folded < self.cols {
                acc = op.reduce_f32(acc, 0.0);
            }
            y.push(acc);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::{gen, reference};

    #[test]
    fn dense_roundtrip() {
        let d = gen::random_sparse_matrix(24, 0.8, 3);
        let s = Csr::from_dense(&d, 0.0).unwrap();
        assert_eq!(s.to_dense(0.0), d);
        assert_eq!(s.nnz(), d.as_slice().iter().filter(|&&x| x != 0.0).count());
    }

    #[test]
    fn roundtrip_with_infinity_zero() {
        // Path matrices use +inf as the implicit value.
        let mut d = Matrix::filled(4, 4, f32::INFINITY);
        d[(1, 2)] = 3.0;
        d[(0, 0)] = 0.0;
        let s = Csr::from_dense(&d, f32::INFINITY).unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(f32::INFINITY), d);
    }

    #[test]
    fn triplets_construction() {
        let s = Csr::from_triplets(3, 3, [(2, 1, 5.0), (0, 0, 1.0), (0, 2, 2.0)]);
        assert_eq!(s.nnz(), 3);
        let d = s.to_dense(0.0);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(2, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_triplets_rejected() {
        let _ = Csr::from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 2.0)]);
    }

    #[test]
    fn try_from_triplets_reports_typed_errors() {
        assert_eq!(
            Csr::try_from_triplets(2, 2, [(0, 3, 1.0)]),
            Err(CsrError::CoordinateOutOfRange {
                row: 0,
                col: 3,
                shape: (2, 2)
            })
        );
        assert_eq!(
            Csr::try_from_triplets(2, 2, [(1, 1, 1.0), (1, 1, 2.0)]),
            Err(CsrError::DuplicateEntry { row: 1, col: 1 })
        );
        assert!(Csr::try_from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 2.0)]).is_ok());
    }

    #[test]
    fn from_raw_roundtrips_valid_images() {
        let d = gen::random_sparse_matrix(16, 0.6, 4);
        let s = Csr::from_dense(&d, 0.0).unwrap();
        let (row_ptr, col_idx, values) = s.clone().into_raw();
        let rebuilt = Csr::from_raw(16, 16, row_ptr, col_idx, values).unwrap();
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn from_raw_rejects_bad_row_pointers() {
        assert_eq!(
            Csr::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(CsrError::RowPointerLength {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            Csr::from_raw(2, 2, vec![1, 1, 1], vec![1], vec![1.0]),
            Err(CsrError::NonMonotonicRowPointer { row: 0 })
        );
        assert_eq!(
            Csr::from_raw(2, 2, vec![0, 1, 0], vec![1], vec![1.0]),
            Err(CsrError::NonMonotonicRowPointer { row: 2 })
        );
        assert_eq!(
            Csr::from_raw(2, 2, vec![0, 1, 2], vec![1], vec![1.0]),
            Err(CsrError::RowPointerMismatch {
                row_ptr_end: 2,
                nnz: 1
            })
        );
    }

    #[test]
    fn from_raw_rejects_bad_columns() {
        assert_eq!(
            Csr::from_raw(1, 2, vec![0, 2], vec![0, 1], vec![1.0]),
            Err(CsrError::LengthMismatch {
                col_idx: 2,
                values: 1
            })
        );
        assert_eq!(
            Csr::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]),
            Err(CsrError::ColumnOutOfBounds {
                row: 0,
                col: 5,
                cols: 2
            })
        );
        // Out of order within a row.
        assert_eq!(
            Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]),
            Err(CsrError::UnsortedColumns { row: 0, col: 0 })
        );
        // Duplicate column within a row.
        assert_eq!(
            Csr::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]),
            Err(CsrError::UnsortedColumns { row: 0, col: 1 })
        );
    }

    #[test]
    fn csr_error_displays_and_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CsrError::DuplicateEntry { row: 3, col: 4 });
        assert!(e.to_string().contains("duplicate entry at (3,4)"));
    }

    #[test]
    fn spgemm_plus_mul_matches_dense_reference() {
        let a_d = gen::random_sparse_matrix(20, 0.7, 5);
        let b_d = gen::random_sparse_matrix(20, 0.7, 6);
        let a = Csr::from_dense(&a_d, 0.0).unwrap();
        let b = Csr::from_dense(&b_d, 0.0).unwrap();
        let c = a.spgemm(OpKind::PlusMul, &b);
        let want = reference::mmo(OpKind::PlusMul, &a_d, &b_d, &Matrix::zeros(20, 20)).unwrap();
        assert!(c.to_dense(0.0).max_abs_diff(&want).unwrap() < 1e-5);
    }

    #[test]
    fn spgemm_min_plus_matches_dense_reference() {
        let g = gen::gnp_graph(16, 0.2, 1.0, 9.0, 7);
        let adj = g.adjacency(OpKind::MinPlus);
        let a = Csr::from_dense(&adj, f32::INFINITY).unwrap();
        let c = a.spgemm(OpKind::MinPlus, &a);
        let cid = Matrix::filled(16, 16, f32::INFINITY);
        let want = reference::mmo(OpKind::MinPlus, &adj, &adj, &cid).unwrap();
        assert_eq!(c.to_dense(f32::INFINITY), want);
    }

    #[test]
    fn spgemm_or_and_reachability() {
        let g = gen::gnp_graph(12, 0.25, 1.0, 2.0, 11);
        let reach = g.reachability();
        let a = Csr::from_dense(&reach, 0.0).unwrap();
        let two_hop = a.spgemm(OpKind::OrAnd, &a);
        let want = reference::mmo(OpKind::OrAnd, &reach, &reach, &Matrix::zeros(12, 12)).unwrap();
        assert_eq!(two_hop.to_dense(0.0), want);
    }

    #[test]
    #[should_panic(expected = "no sparse zero")]
    fn plus_norm_rejected() {
        let s = Csr::from_dense(&Matrix::zeros(2, 2), 0.0).unwrap();
        let _ = s.spgemm(OpKind::PlusNorm, &s);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn shape_mismatch_panics() {
        let a = Csr::from_dense(&Matrix::zeros(2, 3), 0.0).unwrap();
        let b = Csr::from_dense(&Matrix::zeros(2, 2), 0.0).unwrap();
        let _ = a.spgemm(OpKind::PlusMul, &b);
    }

    #[test]
    fn product_count_bounds_work() {
        let a_d = gen::random_sparse_matrix(30, 0.9, 9);
        let a = Csr::from_dense(&a_d, 0.0).unwrap();
        let products = a.spgemm_products(&a);
        // Products ≈ n³ d² on average.
        let expect = 30.0f64.powi(3) * 0.01;
        assert!((products as f64) < expect * 5.0 + 50.0);
        // The realised output nnz can never exceed the products generated.
        let c = a.spgemm(OpKind::PlusMul, &a);
        assert!(c.nnz() as u64 <= products);
    }

    #[test]
    fn device_bytes_accounting() {
        let s = Csr::from_triplets(4, 4, [(0, 0, 1.0), (3, 3, 1.0)]);
        // 2 values + 2 col indices + 5 row pointers, 4 bytes each.
        assert_eq!(s.device_bytes(), (2 + 2 + 5) * 4);
        assert_eq!(s.density(), 2.0 / 16.0);
    }

    #[test]
    fn nan_zero_sentinel_is_rejected() {
        let d = Matrix::zeros(3, 3);
        assert_eq!(Csr::from_dense(&d, f32::NAN), Err(CsrError::NanZero));
        assert!(CsrError::NanZero.to_string().contains("NaN"));
        // ±∞ sentinels stay legal — path algebras depend on them.
        assert!(Csr::from_dense(&d, f32::INFINITY).is_ok());
        assert!(Csr::from_dense(&d, f32::NEG_INFINITY).is_ok());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = gen::random_sparse_matrix(17, 0.7, 13);
        let s = Csr::from_dense(&d, 0.0).unwrap();
        let t = s.transpose();
        assert_eq!(t.to_dense(0.0), d.transposed());
        assert_eq!(t.nnz(), s.nnz());
        // Round trip: (Aᵀ)ᵀ = A, structurally identical.
        assert_eq!(t.transpose(), s);
        // Non-square shapes swap.
        let r = Csr::from_triplets(2, 5, [(0, 4, 1.0), (1, 0, 2.0)]);
        let rt = r.transpose();
        assert_eq!((rt.rows(), rt.cols()), (5, 2));
        assert_eq!(rt.to_dense(0.0)[(4, 0)], 1.0);
    }

    #[test]
    fn transposed_columns_stay_sorted() {
        let d = gen::random_sparse_matrix(12, 0.5, 29);
        let t = Csr::from_dense(&d, 0.0).unwrap().transpose();
        let (row_ptr, col_idx, values) = t.clone().into_raw();
        // from_raw re-validates every structural invariant.
        assert_eq!(Csr::from_raw(12, 12, row_ptr, col_idx, values).unwrap(), t);
    }

    #[test]
    fn spmv_matches_dense_single_column_mmo() {
        for op in [
            OpKind::PlusMul,
            OpKind::MinPlus,
            OpKind::MaxMul,
            OpKind::OrAnd,
        ] {
            let zero = op.no_edge_f32().unwrap();
            let d = Matrix::from_fn(9, 9, |r, c| {
                if (r * 9 + c) % 3 == 0 {
                    1.0 + (r + 2 * c) as f32
                } else {
                    zero
                }
            });
            let x: Vec<f32> = (0..9).map(|i| 0.5 + i as f32).collect();
            let xm = Matrix::from_fn(9, 1, |r, _| x[r]);
            let cid = Matrix::filled(9, 1, op.reduce_identity_f32());
            let want = reference::mmo(op, &d, &xm, &cid).unwrap();
            let got = Csr::from_dense(&d, zero).unwrap().spmv(op, &x);
            for i in 0..9 {
                assert_eq!(
                    got[i].to_bits(),
                    want[(i, 0)].to_bits(),
                    "{op} row {i}: {} vs {}",
                    got[i],
                    want[(i, 0)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn spmv_rejects_wrong_length() {
        let s = Csr::from_dense(&Matrix::zeros(2, 3), 0.0).unwrap();
        let _ = s.spmv(OpKind::PlusMul, &[1.0, 2.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = Csr::from_triplets(3, 3, [(1, 1, 2.0)]);
        assert_eq!(s.row_entries(0).count(), 0);
        assert_eq!(s.row_entries(2).count(), 0);
        assert_eq!(s.row_entries(1).collect::<Vec<_>>(), vec![(1, 2.0)]);
    }
}
