//! Sparse substrate: CSR storage, semiring spGEMM, 2:4 structured
//! sparsity, and the sparse-vs-dense cost models behind Figures 13–14.
//!
//! The paper examines sparsity twice. §6.5 first applies SIMD² to the
//! RTX 3080's *structured-sparse* tensor pipe (2:4 sparsity, 2×
//! throughput — Fig 13), then asks at what *unstructured* sparsity a
//! cuSPARSE-style spGEMM overtakes a dense Tensor-Core GEMM (Fig 14),
//! finding the crossover near 99% for 4096² inputs, no win at 1024², and
//! out-of-memory failures below ~90% sparsity at 16384² because
//! compressed formats backfire on relatively dense data.
//!
//! * [`csr`] — compressed sparse rows with Gustavson spGEMM generalised
//!   over any SIMD² algebra (the substrate a GAMMA-style SIMD² sparse
//!   accelerator would run, cf. §6.5),
//! * [`structured`] — 2:4 structured-sparsity pruning/validation,
//! * [`backend`] — [`SparseTiledBackend`], a representation-aware
//!   implementation of the core [`simd2::Backend`] trait: dense scalar
//!   execution bit-identical to the reference oracle, Gustavson CSR
//!   kernels and a 2:4 compressed fast path behind
//!   [`simd2::Backend::mmo_ref`], and row-panel sharding across a
//!   scoped worker pool,
//! * [`model`] — calibrated cuSPARSE-vs-cuBLAS timing and peak-memory
//!   models for the Fig 14 sweep,
//! * [`gamma`] — the §6.5 GAMMA-PE extension estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod csr;
pub mod gamma;
pub mod model;
pub mod structured;

pub use backend::{SparseOpCount, SparseTiledBackend};
pub use csr::{Csr, CsrError};
