//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`) as a simple
//! wall-clock harness: warm up briefly, run a fixed measurement window,
//! report mean ns/iter on stdout. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            group: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id().label);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark's identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` convenience.
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and rate estimate.
        let warmup = Instant::now();
        let mut warm_iters: u64 = 0;
        while warmup.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Measurement window sized to ~100ms.
        let target = (100_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let ns = if b.iters_done == 0 {
        0
    } else {
        b.elapsed.as_nanos() / u128::from(b.iters_done)
    };
    println!("{label:<56} {ns:>12} ns/iter ({} iters)", b.iters_done);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
