//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the small, deterministic subset of the `rand 0.8` API the workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Generators are xoshiro256** seeded via
//! SplitMix64 — deterministic and statistically solid, but the value
//! streams are *not* identical to upstream `rand`; nothing in this
//! workspace depends on upstream streams, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: seed expander for the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical algorithm here.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $next:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = rng.$next();
                let v = self.start + u * (self.end - self.start);
                // Floating rounding may land exactly on `end`; stay half-open.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + rng.$next() * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, next_f32; f64, next_f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling utilities mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..8)
            .map(|_| StdRng::seed_from_u64(7).gen_range(0..u64::MAX))
            .collect();
        assert!(first.iter().all(|&x| x == first[0]));
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "overwhelmingly unlikely to be identity"
        );
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
