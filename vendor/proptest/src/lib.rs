//! Offline vendored stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, range/`Just`/`prop_oneof!`/`any` strategies,
//! `prop_map`, boxed strategies, `collection::vec`, a deterministic
//! [`test_runner::TestRunner`] and the assertion macros — implemented as
//! a plain seeded random-case runner. Failing cases are reported by the
//! standard assertion panic; there is **no shrinking**. Case streams are
//! a pure function of the test name, so failures reproduce exactly.

pub mod strategy {
    use rand::rngs::StdRng;

    use crate::test_runner::TestRunner;

    /// A generator of values of one type.
    ///
    /// Unlike upstream proptest there is no shrinking tree; a strategy
    /// just draws a value from the runner's RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }

        /// Draws a (degenerate, non-shrinking) value tree.
        ///
        /// # Errors
        ///
        /// Never fails in this implementation.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<SingleValueTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(SingleValueTree {
                value: self.generate(runner.rng_mut()),
            })
        }
    }

    /// A generated value plus its (absent) shrink history.
    pub trait ValueTree {
        /// The type of the held value.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The only [`ValueTree`] shape here: a single fixed value.
    #[derive(Clone, Debug)]
    pub struct SingleValueTree<T> {
        pub(crate) value: T,
    }

    impl<T: Clone> ValueTree for SingleValueTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            assert!(
                !self.0.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::RngCore;

    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// Whole-domain strategy for `T` (see [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy over all of `T`, including the weird
    /// values (NaN bit patterns for floats, extremes for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> f32 {
            // Arbitrary bit patterns: includes NaN, infinities, subnormals.
            f32::from_bits(rng.next_u32())
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Strategy for fixed-length vectors of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases each `proptest!` test executes.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic case runner: owns the RNG strategies draw from.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Runner with a fixed, documented seed — every call constructs
        /// an identical stream.
        pub fn deterministic() -> Self {
            Self::new_seeded(0x9E37_79B9_7F4A_7C15)
        }

        /// Runner seeded explicitly.
        pub fn new_seeded(seed: u64) -> Self {
            Self {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The underlying RNG.
        pub fn rng_mut(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// Stable per-test seed derived from the test's name (FNV-1a), so
    /// each test sees its own reproducible stream.
    pub fn case_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests; see crate docs for limits.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new_seeded(
                    $crate::test_runner::case_seed(stringify!($name)),
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());
                    )*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest name (no shrink-and-report machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 1u32..100, y in (0usize..4).prop_map(|i| i * 2)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y % 2 == 0 && y < 8);
        }

        #[test]
        fn assume_skips_cases(x in any::<f32>()) {
            prop_assume!(!x.is_nan());
            prop_assert!(x == x);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(3u8)]) {
            prop_assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn trees_are_deterministic_per_runner() {
        let strat = crate::collection::vec(0u16..64, 16);
        let a = strat
            .new_tree(&mut crate::test_runner::TestRunner::deterministic())
            .unwrap();
        let b = strat
            .new_tree(&mut crate::test_runner::TestRunner::deterministic())
            .unwrap();
        assert_eq!(a.current(), b.current());
        assert_eq!(a.current().len(), 16);
    }
}
