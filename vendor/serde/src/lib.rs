//! Offline vendored stand-in for `serde`.
//!
//! No serializer backend (serde_json, bincode, …) exists in this
//! workspace, so `Serialize`/`Deserialize` only ever appear as derive
//! attributes and trait bounds. These marker traits plus the no-op
//! derive in `serde_derive` satisfy both without any crates.io access.
//! If a real serializer is ever added, swap this for upstream serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    String,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
