//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in: emit empty marker-trait impls for the deriving type.
//! Supports plain (non-generic) structs and enums, which is every type
//! that derives serde in this workspace, and accepts (and ignores)
//! `#[serde(...)]` helper attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tree in input {
        match tree {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("vendored serde_derive: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("vendored serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("vendored serde_derive: generated impl must parse")
}
