//! Offline vendored stand-in for the `half` crate.
//!
//! Implements IEEE 754 binary16 ⇄ binary32 conversion with
//! round-to-nearest-even, including subnormals, infinities and NaNs —
//! the full numeric behaviour `simd2-semiring::precision` relies on.

/// An IEEE 754 binary16 value stored as its bit pattern.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct f16(u16);

impl f16 {
    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN; keep NaN payload non-zero.
            let payload = if man != 0 {
                0x0200 | ((man >> 13) as u16 & 0x03FF) | 1
            } else {
                0
            };
            return Self(sign | 0x7C00 | payload);
        }

        // Unbiased exponent, rebiasing from 127 to 15.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            // Too large even before rounding: overflow to infinity.
            return Self(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal f16 range (rounding may still carry into infinity).
            let half_exp = (unbiased + 15) as u32;
            // 24-bit significand with the implicit leading one.
            let sig = man | 0x0080_0000;
            let shifted = sig >> 13;
            let rem = sig & 0x1FFF;
            let mut value = (half_exp << 10) + (shifted - 0x0400);
            if rem > 0x1000 || (rem == 0x1000 && (shifted & 1) == 1) {
                value += 1; // carry propagates through exponent naturally
            }
            if value >= 0x7C00 {
                return Self(sign | 0x7C00);
            }
            return Self(sign | value as u16);
        }
        // Subnormal f16 (or underflow to zero).
        if unbiased < -25 {
            return Self(sign); // rounds to zero even at the halfway point
        }
        let sig = man | 0x0080_0000;
        let shift = (-14 - unbiased + 13) as u32; // 14..=24
        let shifted = sig >> shift;
        let rem = sig & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut value = shifted;
        if rem > halfway || (rem == halfway && (shifted & 1) == 1) {
            value += 1; // may round up into the smallest normal: still correct bits
        }
        Self(sign | value as u16)
    }

    /// Converts to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15) << 31;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let man = u32::from(self.0) & 0x03FF;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, _) => {
                // Subnormal with value man·2⁻²⁴: renormalise. The highest
                // set bit p = 10 - lz becomes the implicit one.
                let lz = man.leading_zeros() - 21;
                let shifted = (man << lz) & 0x03FF;
                let e = 127 - 24 + (10 - lz);
                sign | (e << 23) | (shifted << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, _) => sign | 0x7F80_0000 | (man << 13) | 1,
            _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Self(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::f16;

    fn roundtrip(x: f32) -> f32 {
        f16::from_f32(x).to_f32()
    }

    #[test]
    fn exact_values_roundtrip() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            0.25,
            2048.0,
            65504.0,
            0.0009765625,
        ] {
            assert_eq!(roundtrip(x), x, "{x}");
        }
        assert_eq!(roundtrip(f32::INFINITY), f32::INFINITY);
        assert_eq!(roundtrip(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(roundtrip(f32::NAN).is_nan());
    }

    #[test]
    fn integers_up_to_2048_are_exact() {
        for i in 0..=2048u32 {
            assert_eq!(roundtrip(i as f32), i as f32, "{i}");
        }
        assert_ne!(roundtrip(2049.0), 2049.0);
        assert_eq!(roundtrip(2049.0), 2048.0, "round to even mantissa");
        assert_eq!(roundtrip(2051.0), 2052.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(roundtrip(65504.0), 65504.0);
        assert_eq!(roundtrip(65519.0), 65504.0, "below halfway");
        assert_eq!(
            roundtrip(65520.0),
            f32::INFINITY,
            "tie rounds to even (inf)"
        );
        assert_eq!(roundtrip(1.0e6), f32::INFINITY);
        assert_eq!(roundtrip(-1.0e6), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_are_handled() {
        let min_sub = 5.960_464_5e-8; // 2^-24
        assert_eq!(roundtrip(min_sub), min_sub);
        let min_normal = 6.103_515_6e-5; // 2^-14
        assert_eq!(roundtrip(min_normal), min_normal);
        assert_eq!(
            roundtrip(min_sub / 2.0),
            0.0,
            "tie at 2^-25 rounds to even zero"
        );
        assert_eq!(roundtrip(min_sub * 0.4), 0.0);
        assert_eq!(
            roundtrip(min_sub * 1.5),
            min_sub * 2.0,
            "tie rounds to even"
        );
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; even
        // mantissa wins.
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(roundtrip(halfway), 1.0);
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-17);
        assert_eq!(roundtrip(above), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn bit_pattern_accessors() {
        assert_eq!(f16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(f16::from_bits(0x3C00).to_f32(), 1.0);
        assert_eq!(f16::from_f32(-2.0).to_bits(), 0xC000);
    }
}
