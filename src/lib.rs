//! Umbrella crate for the SIMD² (ISCA 2022) reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can use a single dependency. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub use simd2 as core;
pub use simd2_apps as apps;
pub use simd2_fault as fault;
pub use simd2_gpu as gpu;
pub use simd2_isa as isa;
pub use simd2_matrix as matrix;
pub use simd2_mxu as mxu;
pub use simd2_semiring as semiring;
pub use simd2_serve as serve;
pub use simd2_sparse as sparse;
pub use simd2_trace as trace;
