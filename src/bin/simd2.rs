//! `simd2` — command-line front end to the SIMD² reproduction.
//!
//! ```text
//! simd2 ops                          list the nine operations
//! simd2 solve --op min-plus --n 64   closure solve on a seeded workload
//! simd2 micro --op min-max --n 4096  modelled microbenchmark speedup
//! simd2 asm check  <file.s>          assemble, print encodings
//! simd2 asm run    <file.s>          assemble and execute on the warp executor
//! simd2 asm build  <file.s> <out>    assemble to a binary program image
//! simd2 experiments                  list the table/figure harnesses
//! ```

use std::process::ExitCode;

use simd2_repro::core::solve::{closure, ClosureAlgorithm};
use simd2_repro::core::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
use simd2_repro::gpu::Gpu;
use simd2_repro::isa;
use simd2_repro::matrix::gen;
use simd2_repro::semiring::{OpKind, ALL_OPS};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  simd2 ops\n  simd2 solve --op <op> --n <dim> [--seed S] [--algorithm \
         leyzorek|bellman-ford] [--backend reference|tiled|isa] [--no-convergence]\n  simd2 \
         micro --op <op> --n <dim>\n  simd2 asm check|run <file.s>\n  simd2 asm build <file.s> \
         <out.bin>\n  simd2 experiments"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_ops() -> ExitCode {
    println!(
        "{:<11} {:<16} {:<9} {:<6} representative algorithm",
        "op", "PTX", "⊕", "⊗"
    );
    for op in ALL_OPS {
        let (r, c) = op.symbols();
        println!(
            "{:<11} {:<16} {:<9} {:<6} {}",
            op.name(),
            op.ptx_mnemonic(),
            r,
            c,
            op.representative_algorithm()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_solve(args: &[String]) -> ExitCode {
    let Some(op) = flag_value(args, "--op").and_then(|s| s.parse::<OpKind>().ok()) else {
        eprintln!("solve: missing or unknown --op");
        return usage();
    };
    if !op.is_closure_algebra() {
        eprintln!("solve: {op} has no fixed-point closure (try min-plus, max-min, or-and, …)");
        return ExitCode::from(2);
    }
    let n: usize = flag_value(args, "--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let algorithm = match flag_value(args, "--algorithm").as_deref() {
        Some("bellman-ford") => ClosureAlgorithm::BellmanFord,
        _ => ClosureAlgorithm::Leyzorek,
    };
    let convergence = !args.iter().any(|a| a == "--no-convergence");
    let g = match op {
        OpKind::MinMul | OpKind::MaxMul => {
            gen::reliability_graph(n, (8.0 / n as f64).min(0.5), seed)
        }
        _ => gen::connected_gnp_graph(n, (8.0 / n as f64).min(0.5), 1.0, 9.0, seed),
    };
    let adj = match op {
        OpKind::OrAnd => g.reachability(),
        _ => g.adjacency(op),
    };
    let backend_name = flag_value(args, "--backend").unwrap_or_else(|| "tiled".to_owned());
    let (result, tile_mmos, name) = match backend_name.as_str() {
        "reference" => {
            let mut be = ReferenceBackend::new();
            let r = closure(&mut be, op, &adj, algorithm, convergence).expect("square");
            (r, be.op_count().tile_mmos, be.name())
        }
        "isa" => {
            let mut be = IsaBackend::new();
            let r = closure(&mut be, op, &adj, algorithm, convergence).expect("square");
            (r, be.op_count().tile_mmos, be.name())
        }
        _ => {
            let mut be = TiledBackend::new();
            let r = closure(&mut be, op, &adj, algorithm, convergence).expect("square");
            (r, be.op_count().tile_mmos, be.name())
        }
    };
    println!(
        "{} closure of a {n}-vertex seeded workload ({} edges) on `{name}`:",
        op,
        g.edge_count()
    );
    println!(
        "  {} iterations ({}), {} matrix mmos, {} tile mmos, converged early: {}",
        result.stats.iterations,
        algorithm.label(),
        result.stats.matrix_mmos,
        tile_mmos,
        result.stats.converged_early
    );
    let finite = result
        .closure
        .as_slice()
        .iter()
        .filter(|x| x.is_finite())
        .count();
    println!("  finite entries: {finite}/{}", result.closure.len());
    ExitCode::SUCCESS
}

fn cmd_micro(args: &[String]) -> ExitCode {
    let Some(op) = flag_value(args, "--op").and_then(|s| s.parse::<OpKind>().ok()) else {
        eprintln!("micro: missing or unknown --op");
        return usage();
    };
    let n: usize = flag_value(args, "--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let gpu = Gpu::default();
    let r = simd2_repro::core::micro::MicroBench::square(op, n).time(&gpu);
    println!(
        "{op} {n}x{n}x{n}: CUDA cores {:.3} ms, SIMD2 units {:.3} ms -> {:.2}x",
        r.cuda.as_millis(),
        r.simd2.as_millis(),
        r.speedup()
    );
    ExitCode::SUCCESS
}

fn cmd_asm(args: &[String]) -> ExitCode {
    let (Some(mode), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("asm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match isa::asm::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("asm: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode.as_str() {
        "check" => {
            for instr in &program {
                println!("{:#018x}  {instr}", instr.encode());
            }
            ExitCode::SUCCESS
        }
        "build" => {
            let Some(out) = args.get(2) else {
                return usage();
            };
            let image = isa::to_image(&program);
            if let Err(e) = std::fs::write(out, &image) {
                eprintln!("asm: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} bytes ({} instructions) to {out}",
                image.len(),
                program.len()
            );
            ExitCode::SUCCESS
        }
        "trace" => {
            let mem_elems: usize = flag_value(args, "--mem")
                .and_then(|s| s.parse().ok())
                .unwrap_or(65536);
            let mut exec = isa::Executor::new(isa::SharedMemory::new(mem_elems));
            match exec.run_traced(&program) {
                Ok((stats, trace)) => {
                    for entry in &trace {
                        println!("{entry}");
                    }
                    println!("-- {} instructions retired", stats.total_instructions());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("asm: execution fault: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let mem_elems: usize = flag_value(args, "--mem")
                .and_then(|s| s.parse().ok())
                .unwrap_or(65536);
            let mut exec = isa::Executor::new(isa::SharedMemory::new(mem_elems));
            match exec.run(&program) {
                Ok(stats) => {
                    println!(
                        "executed {} instructions: {} loads, {} fills, {} mmos, {} stores",
                        stats.total_instructions(),
                        stats.loads,
                        stats.fills,
                        stats.total_mmos(),
                        stats.stores
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("asm: execution fault: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn cmd_experiments() -> ExitCode {
    println!("table/figure harnesses (run with `cargo run -p simd2-bench --bin <name>`):");
    for (name, what) in [
        ("table4_apps", "Table 4: application inventory"),
        ("table5_area", "Table 5: area/power/die model"),
        ("fig09_micro", "Figure 9: square microbenchmarks"),
        ("fig10_nonsquare", "Figure 10: non-square microbenchmarks"),
        ("fig11_apps", "Figure 11: application speedups"),
        ("fig12_ablation", "Figure 12: algorithm ablation"),
        ("fig13_sparse", "Figure 13: sparse SIMD2 units"),
        ("fig14_crossover", "Figure 14: spGEMM-vs-dense crossover"),
        ("validate_apps", "§5.1 correctness validation sweep"),
        ("ablate_sharing", "ablation: datapath sharing"),
        ("ablate_precision", "ablation: fp32/fp16/int8 operands"),
        ("ablate_fused_vector", "ablation: fused-vector ISA"),
        ("ablate_tile_shape", "ablation: 4x4 vs 8x8 units"),
    ] {
        println!("  {name:<22} {what}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ops") => cmd_ops(),
        Some("solve") => cmd_solve(&args[1..]),
        Some("micro") => cmd_micro(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("experiments") => cmd_experiments(),
        _ => usage(),
    }
}
