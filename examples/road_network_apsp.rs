//! All-pairs shortest path on a synthetic road network — the paper's
//! flagship workload (Figure 7), end to end: functional solve, correctness
//! validation against blocked Floyd–Warshall, and modelled RTX 3080-class
//! timing for all three configurations.
//!
//! Run with `cargo run --release --example road_network_apsp [n]`.

use simd2_repro::apps::timing::{AppTiming, Config};
use simd2_repro::apps::{apsp, AppKind};
use simd2_repro::core::solve::ClosureAlgorithm;
use simd2_repro::core::validate::compare_outputs;
use simd2_repro::core::{Backend, TiledBackend};
use simd2_repro::gpu::Gpu;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    println!("road network: {n} junctions, avg degree ~8, integer travel times\n");

    // --- functional run on the SIMD² unit backend -----------------------
    let g = apsp::generate(n, 2026);
    let mut backend = TiledBackend::new();
    let result = apsp::simd2(&mut backend, &g, ClosureAlgorithm::Leyzorek, true);
    println!(
        "Leyzorek closure: {} iterations, {} matrix mmos, {} tile ops, converged early: {}",
        result.stats.iterations,
        result.stats.matrix_mmos,
        backend.op_count().tile_mmos,
        result.stats.converged_early,
    );

    // --- validation against the ECL-APSP-style baseline -----------------
    let oracle = apsp::baseline(&g);
    let v = compare_outputs("apsp", &oracle, &result.closure, 0.0);
    println!(
        "validation vs blocked Floyd-Warshall: max |diff| = {} -> {}",
        v.max_abs_diff,
        if v.passed() {
            "PASS (bit-exact)"
        } else {
            "FAIL"
        }
    );

    // A couple of human-readable answers.
    let far = (0..n)
        .map(|j| (j, result.closure[(0, j)]))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "farthest junction from #0: #{} at travel time {}\n",
        far.0, far.1
    );

    // --- modelled timing at paper scale ----------------------------------
    let model = AppTiming::new(Gpu::default());
    println!("modelled kernel time on an RTX 3080-class GPU:");
    for scale_n in [4096usize, 8192, 16384] {
        let base = model.baseline_time(AppKind::Apsp, scale_n);
        let units = model.speedup(AppKind::Apsp, scale_n, Config::Simd2Units);
        let cuda = model.speedup(AppKind::Apsp, scale_n, Config::Simd2CudaCores);
        println!(
            "  n = {scale_n:>6}: baseline {:>9.3} ms | SIMD2 units {:>6.2}x | SIMD2 on CUDA cores {:>5.2}x",
            base.as_millis(),
            units,
            cuda,
        );
    }
}
