//! Maximum-reliability routing with `simd2.maxmul` — and actual route
//! extraction with the path-reconstruction API.
//!
//! The closure matrix only stores optimal *values*; real applications
//! need the routes. This example computes all-pairs maximum reliability
//! over a lossy mesh network, then reconstructs and prints the best
//! route between the least-reliable pair.
//!
//! Run with `cargo run --release --example reliability_paths [n]`.

use simd2_repro::apps::paths;
use simd2_repro::core::solve::{closure, path_value, reconstruct_path, ClosureAlgorithm};
use simd2_repro::core::ReferenceBackend;
use simd2_repro::semiring::OpKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let op = OpKind::MaxMul;
    let g = paths::generate_maxrp(n, 33);
    let adj = g.adjacency(op);
    println!(
        "lossy mesh: {n} nodes, {} links with delivery probabilities in (0.5, 1.0)\n",
        g.edge_count()
    );

    // All-pairs maximum reliability via the max-mul closure (fp32
    // reference backend so path extraction is exact).
    let mut be = ReferenceBackend::new();
    let result =
        closure(&mut be, op, &adj, ClosureAlgorithm::Leyzorek, true).expect("square adjacency");
    println!(
        "closure solved in {} Leyzorek iterations ({} matrix mmos)",
        result.stats.iterations, result.stats.matrix_mmos
    );

    // Find the hardest pair (lowest best-case reliability).
    let rel = &result.closure;
    let mut worst = (1.0f32, (0usize, 0usize));
    for s in 0..n {
        for d in 0..n {
            if s != d && rel[(s, d)] < worst.0 {
                worst = (rel[(s, d)], (s, d));
            }
        }
    }
    let (prob, (src, dst)) = worst;
    println!(
        "\nhardest pair: {src} -> {dst}, best end-to-end delivery probability {:.4}",
        prob
    );

    // Reconstruct the actual route.
    let route = reconstruct_path(op, &adj, rel, src, dst).expect("pair is connected");
    println!("best route ({} hops):", route.len() - 1);
    for hop in route.windows(2) {
        println!(
            "  {:>4} -> {:<4} link reliability {:.4}",
            hop[0],
            hop[1],
            adj[(hop[0], hop[1])]
        );
    }
    let v = path_value(op, &adj, &route).expect("route uses real links");
    assert_eq!(v, prob, "route must achieve the closure's optimum");
    println!("route product {:.4} == closure value ✓", v);
}
