//! The SIMD² ISA up close: write a kernel in PTX-like assembly, inspect
//! its binary encoding, run it on the warp-level executor, and read the
//! result back from shared memory.
//!
//! The program below is the inner loop of the paper's Figure 6
//! (`simd2_minplus`) for one 16×16 output tile of a 32-wide problem: load
//! the partial-result tile, stream the two k-tiles through
//! `simd2.minplus`, store the tile back.
//!
//! Run with `cargo run --example isa_playground`.

use simd2_repro::isa::{asm, Executor, Instruction, SharedMemory};
use simd2_repro::matrix::Matrix;

const KERNEL: &str = "
// D(0,0) tile of a 32x32x32 min-plus matrix operation
simd2.load.f32 %m2, [2048], 32     // C tile (fp32 accumulator)
simd2.load.f16 %m0, [0], 32        // A(0,0)
simd2.load.f16 %m1, [1024], 32     // B(0,0)
simd2.minplus  %m2, %m0, %m1, %m2
simd2.load.f16 %m0, [16], 32       // A(0,1)
simd2.load.f16 %m1, [1536], 32     // B(1,0)
simd2.minplus  %m2, %m0, %m1, %m2
simd2.store.f32 [2048], %m2, 32
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble.
    let program = asm::parse(KERNEL)?;
    println!("assembled {} instructions:", program.len());
    for instr in &program {
        let word = instr.encode();
        let decoded = Instruction::decode(word)?;
        assert_eq!(decoded, *instr, "encode/decode must round-trip");
        println!("  {word:#018x}  {instr}");
    }

    // Stage inputs: a 32x32 min-plus problem, A and B random-ish integer
    // distances, C seeded with +inf (no paths known yet).
    let a = Matrix::from_fn(32, 32, |r, c| ((r * 7 + c * 3) % 9 + 1) as f32);
    let b = Matrix::from_fn(32, 32, |r, c| ((r * 5 + c) % 11 + 1) as f32);
    let c = Matrix::filled(32, 32, f32::INFINITY);
    let mut mem = SharedMemory::new(4096);
    mem.write_matrix(0, 32, &a)?; //     A at elements [0,    1024)
    mem.write_matrix(1024, 32, &b)?; //  B at elements [1024, 2048)
    mem.write_matrix(2048, 32, &c)?; //  C at elements [2048, 3072)

    // Execute.
    let mut exec = Executor::new(mem);
    let stats = exec.run(&program)?;
    println!(
        "\nexecuted: {} loads, {} mmos, {} stores, {} elements moved",
        stats.loads,
        stats.total_mmos(),
        stats.stores,
        stats.elements_moved()
    );

    // Verify the tile against the whole-matrix reference.
    let got = exec.memory().read_matrix(2048, 32, 16, 16)?;
    let full =
        simd2_repro::matrix::reference::mmo(simd2_repro::semiring::OpKind::MinPlus, &a, &b, &c)?;
    let want = Matrix::from_fn(16, 16, |r, col| full[(r, col)]);
    assert_eq!(got, want, "ISA path must match the reference model");
    println!("output tile matches the reference model ✓");
    println!("D(0,0)[0..4][0..4]:");
    for r in 0..4 {
        println!(
            "  {:5} {:5} {:5} {:5}",
            got[(r, 0)],
            got[(r, 1)],
            got[(r, 2)],
            got[(r, 3)]
        );
    }
    Ok(())
}
