//! Minimum spanning tree of a telecom backbone — the min-max (minimax)
//! application: Kruskal vs the SIMD² bottleneck-closure formulation.
//!
//! The matrix algorithm was "traditionally considered inefficient" (paper
//! §8) — it does O(V³) work per iteration against Kruskal's O(E log E) —
//! but it maps perfectly onto `simd2.minmax`, and this example shows both
//! producing the identical tree.
//!
//! Run with `cargo run --release --example network_mst [n]`.

use simd2_repro::apps::mst;
use simd2_repro::core::solve::ClosureAlgorithm;
use simd2_repro::core::{Backend, TiledBackend};
use simd2_repro::semiring::OpKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let g = mst::generate(n, 0.15, 7);
    println!(
        "backbone: {} sites, {} candidate links (distinct integer costs)\n",
        g.vertex_count(),
        g.edge_count() / 2
    );

    // Classic Kruskal with union-find.
    let kruskal = mst::baseline(&g);
    println!(
        "Kruskal:        {} links, total cost {}",
        kruskal.edges.len(),
        kruskal.total_weight
    );

    // SIMD²: min-max closure gives all-pairs *bottleneck* costs; a link is
    // in the MST exactly when it is its endpoints' bottleneck (the cycle
    // property in matrix form).
    let mut backend = TiledBackend::new();
    let (closure_mst, closure) = mst::simd2(&mut backend, &g, ClosureAlgorithm::Leyzorek, true);
    println!(
        "SIMD2 min-max:  {} links, total cost {} ({} iterations, {} tile ops)",
        closure_mst.edges.len(),
        closure_mst.total_weight,
        closure.stats.iterations,
        backend.op_count().tile_mmos,
    );
    assert_eq!(kruskal, closure_mst, "both algorithms must agree");
    println!("\ntrees are identical ✓");

    // The bottleneck matrix is independently useful: it answers "what is
    // the worst link on the best path between any two sites?".
    let b = &closure.closure;
    let (mut worst, mut pair) = (f32::NEG_INFINITY, (0, 0));
    for i in 0..n {
        for j in (i + 1)..n {
            if b[(i, j)] > worst {
                worst = b[(i, j)];
                pair = (i, j);
            }
        }
    }
    println!(
        "hardest-to-connect pair: sites {} and {} (bottleneck link cost {})",
        pair.0, pair.1, worst
    );
    let _ = OpKind::MinMax; // the single instruction this app runs on
}
