//! Quickstart: the SIMD² programming model in five minutes.
//!
//! Run with `cargo run --example quickstart`.

use simd2_repro::core::highlevel::{simd2_minplus, simd2_mmo};
use simd2_repro::core::solve::{closure, ClosureAlgorithm};
use simd2_repro::core::{Backend, TiledBackend};
use simd2_repro::matrix::Graph;
use simd2_repro::semiring::OpKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A semiring-like operation is just a (⊕, ⊗) pair. min-plus is the
    //    shortest-path algebra: ⊗ extends a path, ⊕ keeps the better one.
    let op = OpKind::MinPlus;
    println!("{op}: acc ⊕ (a ⊗ b) = {}", op.fma_f32(7.0, 3.0, 2.0));

    // 2. A tiny road network.
    let mut g = Graph::new(4);
    g.add_edge(0, 1, 3.0); // depot → A
    g.add_edge(1, 2, 4.0); // A → B
    g.add_edge(0, 2, 9.0); // depot → B (slow direct road)
    g.add_edge(2, 3, 1.0); // B → customer
    let adj = g.adjacency(op);

    // 3. One SIMD² matrix operation: relax every path by one more edge.
    //    (This is the `simd2.minplus` instruction at whole-matrix scale.)
    let relaxed = simd2_minplus(&adj, &adj, &adj)?;
    println!("after one relaxation, depot→B = {}", relaxed[(0, 2)]); // 7, via A

    // 4. The closure solver iterates to the fixed point (Leyzorek's
    //    repeated squaring with the convergence check of paper Fig. 7).
    let mut backend = TiledBackend::new(); // fp16-operand SIMD² units
    let result = closure(&mut backend, op, &adj, ClosureAlgorithm::Leyzorek, true)?;
    println!(
        "all-pairs distances after {} iterations ({} 16x16 tile ops):",
        result.stats.iterations,
        backend.op_count().tile_mmos
    );
    println!("{:?}", result.closure);
    assert_eq!(result.closure[(0, 3)], 8.0); // depot → A → B → customer

    // 5. The same machinery runs all nine operations — here, one or-and
    //    step asks "who is reachable within two hops?".
    let reach = g.reachability();
    let two_hop = simd2_mmo(OpKind::OrAnd, &reach, &reach, &reach)?;
    println!(
        "depot reaches customer within two hops: {}",
        two_hop[(0, 3)] == 1.0
    );

    // 6. Every operand moved through a SIMD² unit is fp16; accumulation is
    //    fp32. Integer-weighted workloads like this one are bit-exact.
    let fp32_oracle = {
        let mut reference = simd2_repro::core::ReferenceBackend::new();
        closure(&mut reference, op, &adj, ClosureAlgorithm::Leyzorek, true)?.closure
    };
    assert_eq!(result.closure, fp32_oracle);
    println!("fp16 SIMD² result matches the fp32 oracle bit-for-bit");
    Ok(())
}
