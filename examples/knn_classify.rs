//! K-nearest-neighbour classification with `simd2.addnorm` — the
//! plus-norm application: one matrix operation computes the full pairwise
//! squared-L2 matrix that the classifier votes over.
//!
//! Run with `cargo run --release --example knn_classify`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simd2_repro::apps::knn;
use simd2_repro::core::{Backend, TiledBackend};
use simd2_repro::matrix::Matrix;
use simd2_repro::semiring::precision::quantize_f16;

const CLASSES: usize = 3;
const PER_CLASS: usize = 40;
const DIMS: usize = 32;

/// Three well-separated Gaussian-ish blobs, fp16-quantised like any other
/// SIMD² operand.
fn blobs(seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = CLASSES * PER_CLASS;
    let mut pts = Matrix::zeros(n, DIMS);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i / PER_CLASS;
        labels.push(class);
        for d in 0..DIMS {
            let center = if d % CLASSES == class { 4.0 } else { 0.0 };
            pts[(i, d)] = quantize_f16(center + rng.gen_range(-1.0f32..1.0));
        }
    }
    (pts, labels)
}

fn main() {
    let (pts, labels) = blobs(11);
    println!(
        "{} points, {} classes, {} dims; classifying each point by its {} nearest neighbours\n",
        pts.rows(),
        CLASSES,
        DIMS,
        knn::K
    );

    // Full pairwise distances through the SIMD² unit backend, then vote.
    let mut backend = TiledBackend::new();
    let result = knn::simd2(&mut backend, &pts, knn::K);
    println!(
        "addnorm produced a {}x{} distance matrix via {} tile ops",
        pts.rows(),
        pts.rows(),
        backend.op_count().tile_mmos
    );

    let mut correct = 0usize;
    for (q, neighbours) in result.indices.iter().enumerate() {
        let mut votes = [0usize; CLASSES];
        for &r in neighbours {
            votes[labels[r]] += 1;
        }
        let predicted = votes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        if predicted == labels[q] {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / pts.rows() as f64;
    println!("leave-one-out accuracy: {:.1}%", accuracy * 100.0);
    assert!(
        accuracy > 0.95,
        "separated blobs should classify nearly perfectly"
    );

    // Cross-check the reduced-precision path against the fp32 brute force.
    let oracle = knn::baseline(&pts, knn::K);
    println!(
        "recall vs fp32 brute force: {:.3}",
        knn::recall(&oracle, &result)
    );
}
