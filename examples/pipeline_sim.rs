//! Watching the SIMD² tile pipe fill: compile one matrix operation into
//! per-warp instruction streams and sweep the resident-warp count on the
//! cycle-level SM pipeline simulator.
//!
//! This is the microarchitectural "why" behind the Figure-9 speedup ramp:
//! small problems cannot keep enough warps resident to cover the tile
//! pipe's latency, so utilisation — and therefore speedup over CUDA
//! cores — grows with input size until the pipe saturates.
//!
//! Run with `cargo run --release --example pipeline_sim`.

use simd2_repro::core::program::compile_mmo;
use simd2_repro::gpu::sim::SmPipeline;
use simd2_repro::semiring::OpKind;

fn main() {
    let (m, n, k) = (128usize, 128, 128);
    println!("lowering a {m}x{n}x{k} min-plus mmo to warp programs…\n");
    println!(
        "{:>6}  {:>9}  {:>11}  {:>10}  {:>9}",
        "warps", "cycles", "cycles/mmo", "SIMD2 util", "stalls"
    );
    let sim = SmPipeline::new();
    for warps in [1usize, 2, 4, 8, 16] {
        let kernel = compile_mmo(OpKind::MinPlus, m, n, k, warps);
        let stats = sim.simulate(&kernel.warp_programs);
        println!(
            "{:>6}  {:>9}  {:>11.1}  {:>9.0}%  {:>9}",
            warps,
            stats.cycles,
            stats.cycles_per_mmo(),
            100.0 * stats.simd2_utilization(),
            stats.dependency_stalls + stats.structural_stalls,
        );
    }
    println!(
        "\nThe analytic machine model prices one 16x16x16 mmo at 64 unit-cycles;\n\
         the simulator converges to that bound once ~8 warps are resident —\n\
         the latency-hiding behaviour the Fig 9 saturation curve abstracts."
    );
}
